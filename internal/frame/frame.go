// Package frame defines the MACAW over-the-air frame formats: the RTS, CTS,
// DS, DATA, ACK and RRTS packet types, the backoff header fields that the
// copying algorithm of Appendix B piggybacks on every packet, and a compact
// binary wire encoding.
//
// Sizes follow the paper: control packets are exactly 30 bytes on the air
// and data packets are 512 bytes (configurable per frame via DataBytes).
package frame

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"

	"macaw/internal/sim"
)

// NodeID identifies a station (a pad or a base station). IDs are assigned
// by the topology builder and are stable for the lifetime of a run.
type NodeID uint16

// Broadcast is the destination of multicast transmissions (§3.3.4).
const Broadcast NodeID = 0xFFFF

// String formats the id as Nxx; the topology layer supplies nicer names.
func (id NodeID) String() string {
	if id == Broadcast {
		return "MCAST"
	}
	return fmt.Sprintf("N%d", id)
}

// Type enumerates the MACAW frame types.
type Type uint8

const (
	// RTS is the Request-to-Send control packet.
	RTS Type = iota
	// CTS is the Clear-to-Send control packet.
	CTS
	// DS is the Data-Sending control packet announcing that the RTS-CTS
	// exchange succeeded and a data transmission follows (§3.3.2).
	DS
	// DATA carries a transport payload.
	DATA
	// ACK is the link-level acknowledgement (§3.3.1).
	ACK
	// RRTS is the Request-for-Request-to-Send packet with which a
	// receiver contends on behalf of a blocked sender (§3.3.3).
	RRTS
	// NACK is the negative acknowledgement from the §4 design
	// alternatives: sent by a receiver that issued a CTS but did not
	// receive the data.
	NACK
	// TOKEN passes channel ownership in the token-based access scheme
	// the paper defers to future work ("Various token-based schemes ...
	// are possibilities we hope to explore").
	TOKEN
	// SIG is the Tournament MAC's elimination-round signaling burst: a
	// contender whose draw has a 1-bit in the current round radiates one
	// SIG for the slot; silent contenders that hear it (or its carrier)
	// lose the round (Galtier's constant-window tournament).
	SIG

	numTypes
)

var typeNames = [...]string{"RTS", "CTS", "DS", "DATA", "ACK", "RRTS", "NACK", "TOKEN", "SIG"}

// String returns the conventional name of the frame type.
func (t Type) String() string {
	if int(t) < len(typeNames) {
		return typeNames[t]
	}
	return fmt.Sprintf("Type(%d)", uint8(t))
}

// Valid reports whether t is a defined frame type.
func (t Type) Valid() bool { return t < numTypes }

// Control reports whether the type is a fixed-size 30-byte control packet.
func (t Type) Control() bool { return t.Valid() && t != DATA }

// ControlBytes is the on-air size of every control packet. "The control
// packets (RTS, CTS) are 30 bytes long. The transmission time of these
// packets defines the slot time for retransmissions."
const ControlBytes = 30

// DefaultDataBytes is the paper's data packet size: "All data packets are
// 512 bytes".
const DefaultDataBytes = 512

// IDontKnow marks an unknown remote backoff estimate in a packet header
// (Appendix B: "remote_backoff = Q's backoff (or I_DONT_KNOW)").
const IDontKnow int16 = -1

// Frame is one over-the-air packet.
type Frame struct {
	Type Type
	// Src and Dst identify the transmitting station and the intended
	// receiver. Dst is Broadcast for multicast data.
	Src, Dst NodeID
	// DataBytes is the length of the proposed data transmission. RTS and
	// CTS carry it so overhearers can size their defer periods; for DATA
	// it is the frame's own on-air size.
	DataBytes uint16
	// LocalBackoff is the sender's backoff value for this exchange
	// (Appendix B "local_backoff").
	LocalBackoff int16
	// RemoteBackoff is the sender's estimate of the receiver's backoff,
	// or IDontKnow (Appendix B "remote_backoff").
	RemoteBackoff int16
	// ESN is the exchange sequence number used by the per-destination
	// backoff bookkeeping (Appendix B "exchange_seq_number").
	ESN uint32
	// Seq identifies the transport packet a DATA/ACK frame refers to, so
	// a receiver can return an ACK instead of a CTS when it sees an RTS
	// for a packet it already acknowledged (Appendix B control rule 7).
	Seq uint32
	// Multicast marks an RTS that announces an RTS-DATA multicast
	// exchange rather than a unicast RTS-CTS exchange (§3.3.4).
	Multicast bool
	// AckRequested marks a DATA frame whose sender wants the immediate
	// link-level ACK; with the §4 piggyback scheme a sender with more
	// packets queued clears it and collects the acknowledgement from the
	// next CTS instead.
	AckRequested bool
	// HasAck marks a CTS carrying a piggybacked acknowledgement.
	HasAck bool
	// Ack is the sequence number acknowledged by a piggybacking CTS
	// ("a field which indicated the sequence number of the most
	// recently arrived packet", §4).
	Ack uint32
	// Payload is the transport payload of a DATA frame. It is carried by
	// value inside the simulator and length-checked by the wire codec.
	Payload []byte
}

// Size returns the frame's on-air size in bytes.
func (f *Frame) Size() int {
	if f.Type == DATA {
		return int(f.DataBytes)
	}
	return ControlBytes
}

// Airtime returns the time needed to transmit the frame at bitrate bits/s.
func (f *Frame) Airtime(bitrate int) sim.Duration {
	return Airtime(f.Size(), bitrate)
}

// Airtime returns the transmission time of n bytes at bitrate bits/s.
func Airtime(n, bitrate int) sim.Duration {
	return sim.Duration(int64(n) * 8 * int64(sim.Second) / int64(bitrate))
}

// String renders a concise human-readable description for traces.
func (f *Frame) String() string {
	s := fmt.Sprintf("%s %v->%v", f.Type, f.Src, f.Dst)
	if f.Type == RTS || f.Type == CTS || f.Type == DS {
		s += fmt.Sprintf(" len=%d", f.DataBytes)
	}
	if f.Type == DATA || f.Type == ACK {
		s += fmt.Sprintf(" seq=%d", f.Seq)
	}
	return s
}

// Clone returns a deep copy of the frame.
func (f *Frame) Clone() *Frame {
	g := *f
	if f.Payload != nil {
		g.Payload = append([]byte(nil), f.Payload...)
	}
	return &g
}

// Wire encoding
//
// The simulator passes *Frame values around directly, but the codec below
// defines an unambiguous wire format so traces can be persisted and so the
// frame layout is pinned by tests. Layout (big endian):
//
//	 0: magic (0xMA = 0x4D41, 2 bytes)
//	 2: version (1 byte)
//	 3: type (1 byte)
//	 4: flags (1 byte; bit0 = multicast)
//	 5: src (2 bytes)
//	 7: dst (2 bytes)
//	 9: dataBytes (2 bytes)
//	11: localBackoff (2 bytes, signed)
//	13: remoteBackoff (2 bytes, signed)
//	15: esn (4 bytes)
//	19: seq (4 bytes)
//	23: ack (4 bytes)
//	27: payloadLen (2 bytes) + payload
//	 N: crc32 (IEEE, 4 bytes) over everything before it
//
// Flag bits: 0 multicast, 1 ackRequested, 2 hasAck.

const (
	wireMagic   uint16 = 0x4D41 // "MA"
	wireVersion byte   = 1
	headerLen          = 29
	trailerLen         = 4
	// MaxPayload bounds the encodable payload length.
	MaxPayload = 0xFFFF
)

// Codec errors.
var (
	ErrShortBuffer = errors.New("frame: buffer too short")
	ErrBadMagic    = errors.New("frame: bad magic")
	ErrBadVersion  = errors.New("frame: unsupported version")
	ErrBadType     = errors.New("frame: unknown frame type")
	ErrBadChecksum = errors.New("frame: checksum mismatch")
	ErrTooLong     = errors.New("frame: payload too long")
)

// Marshal encodes the frame into a fresh byte slice.
func (f *Frame) Marshal() ([]byte, error) {
	if !f.Type.Valid() {
		return nil, ErrBadType
	}
	if len(f.Payload) > MaxPayload {
		return nil, ErrTooLong
	}
	b := make([]byte, headerLen+len(f.Payload)+trailerLen)
	binary.BigEndian.PutUint16(b[0:], wireMagic)
	b[2] = wireVersion
	b[3] = byte(f.Type)
	if f.Multicast {
		b[4] |= 1
	}
	if f.AckRequested {
		b[4] |= 2
	}
	if f.HasAck {
		b[4] |= 4
	}
	binary.BigEndian.PutUint16(b[5:], uint16(f.Src))
	binary.BigEndian.PutUint16(b[7:], uint16(f.Dst))
	binary.BigEndian.PutUint16(b[9:], f.DataBytes)
	binary.BigEndian.PutUint16(b[11:], uint16(f.LocalBackoff))
	binary.BigEndian.PutUint16(b[13:], uint16(f.RemoteBackoff))
	binary.BigEndian.PutUint32(b[15:], f.ESN)
	binary.BigEndian.PutUint32(b[19:], f.Seq)
	binary.BigEndian.PutUint32(b[23:], f.Ack)
	binary.BigEndian.PutUint16(b[27:], uint16(len(f.Payload)))
	copy(b[headerLen:], f.Payload)
	sum := crc32.ChecksumIEEE(b[:len(b)-trailerLen])
	binary.BigEndian.PutUint32(b[len(b)-trailerLen:], sum)
	return b, nil
}

// Unmarshal decodes a frame previously produced by Marshal.
func Unmarshal(b []byte) (*Frame, error) {
	if len(b) < headerLen+trailerLen {
		return nil, ErrShortBuffer
	}
	if binary.BigEndian.Uint16(b[0:]) != wireMagic {
		return nil, ErrBadMagic
	}
	if b[2] != wireVersion {
		return nil, ErrBadVersion
	}
	t := Type(b[3])
	if !t.Valid() {
		return nil, ErrBadType
	}
	plen := int(binary.BigEndian.Uint16(b[27:]))
	if len(b) != headerLen+plen+trailerLen {
		return nil, ErrShortBuffer
	}
	want := binary.BigEndian.Uint32(b[len(b)-trailerLen:])
	if crc32.ChecksumIEEE(b[:len(b)-trailerLen]) != want {
		return nil, ErrBadChecksum
	}
	f := &Frame{
		Type:          t,
		Multicast:     b[4]&1 != 0,
		AckRequested:  b[4]&2 != 0,
		HasAck:        b[4]&4 != 0,
		Src:           NodeID(binary.BigEndian.Uint16(b[5:])),
		Dst:           NodeID(binary.BigEndian.Uint16(b[7:])),
		DataBytes:     binary.BigEndian.Uint16(b[9:]),
		LocalBackoff:  int16(binary.BigEndian.Uint16(b[11:])),
		RemoteBackoff: int16(binary.BigEndian.Uint16(b[13:])),
		ESN:           binary.BigEndian.Uint32(b[15:]),
		Seq:           binary.BigEndian.Uint32(b[19:]),
		Ack:           binary.BigEndian.Uint32(b[23:]),
	}
	if plen > 0 {
		f.Payload = append([]byte(nil), b[headerLen:headerLen+plen]...)
	}
	return f, nil
}
