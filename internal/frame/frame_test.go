package frame

import (
	"bytes"
	"errors"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"macaw/internal/sim"
)

func TestTypeStrings(t *testing.T) {
	want := map[Type]string{RTS: "RTS", CTS: "CTS", DS: "DS", DATA: "DATA", ACK: "ACK", RRTS: "RRTS", NACK: "NACK", TOKEN: "TOKEN"}
	for ty, name := range want {
		if ty.String() != name {
			t.Errorf("%d.String() = %q, want %q", ty, ty.String(), name)
		}
		if !ty.Valid() {
			t.Errorf("%s reported invalid", name)
		}
	}
	if Type(200).Valid() {
		t.Error("Type(200) reported valid")
	}
	if Type(200).String() != "Type(200)" {
		t.Errorf("Type(200).String() = %q", Type(200).String())
	}
}

func TestControlClassification(t *testing.T) {
	for _, ty := range []Type{RTS, CTS, DS, ACK, RRTS, NACK, TOKEN} {
		if !ty.Control() {
			t.Errorf("%s not classified as control", ty)
		}
	}
	if DATA.Control() {
		t.Error("DATA classified as control")
	}
	if Type(99).Control() {
		t.Error("invalid type classified as control")
	}
}

func TestSizes(t *testing.T) {
	rts := &Frame{Type: RTS, DataBytes: 512}
	if rts.Size() != ControlBytes {
		t.Fatalf("RTS size = %d, want %d", rts.Size(), ControlBytes)
	}
	data := &Frame{Type: DATA, DataBytes: 512}
	if data.Size() != 512 {
		t.Fatalf("DATA size = %d, want 512", data.Size())
	}
}

func TestAirtimeExactAtPaperBitrate(t *testing.T) {
	// 30 bytes at 256 kbps is exactly 937.5 us — the contention slot.
	if got := Airtime(30, 256000); got != 937500*sim.Nanosecond {
		t.Fatalf("control airtime = %d ns, want 937500", got)
	}
	// 512 bytes at 256 kbps is exactly 16 ms.
	if got := Airtime(512, 256000); got != 16*sim.Millisecond {
		t.Fatalf("data airtime = %d, want 16ms", got)
	}
	f := &Frame{Type: DATA, DataBytes: 512}
	if f.Airtime(256000) != 16*sim.Millisecond {
		t.Fatal("Frame.Airtime disagrees with Airtime")
	}
}

func TestNodeIDString(t *testing.T) {
	if NodeID(3).String() != "N3" {
		t.Fatalf("NodeID(3) = %q", NodeID(3).String())
	}
	if Broadcast.String() != "MCAST" {
		t.Fatalf("Broadcast = %q", Broadcast.String())
	}
}

func TestFrameString(t *testing.T) {
	f := &Frame{Type: RTS, Src: 1, Dst: 2, DataBytes: 512}
	if got := f.String(); got != "RTS N1->N2 len=512" {
		t.Fatalf("String = %q", got)
	}
	d := &Frame{Type: DATA, Src: 1, Dst: 2, Seq: 7, DataBytes: 512}
	if got := d.String(); got != "DATA N1->N2 seq=7" {
		t.Fatalf("String = %q", got)
	}
}

func TestClone(t *testing.T) {
	f := &Frame{Type: DATA, Src: 1, Dst: 2, Payload: []byte{1, 2, 3}}
	g := f.Clone()
	g.Payload[0] = 99
	g.Src = 5
	if f.Payload[0] != 1 || f.Src != 1 {
		t.Fatal("Clone aliased the original")
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	f := &Frame{
		Type: DATA, Src: 10, Dst: 20, DataBytes: 512,
		LocalBackoff: 17, RemoteBackoff: IDontKnow,
		ESN: 0xDEADBEEF, Seq: 42, Multicast: true,
		AckRequested: true, HasAck: true, Ack: 41,
		Payload: []byte("hello macaw"),
	}
	b, err := f.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	g, err := Unmarshal(b)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(f, g) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", g, f)
	}
}

func TestUnmarshalErrors(t *testing.T) {
	f := &Frame{Type: RTS, Src: 1, Dst: 2}
	b, err := f.Marshal()
	if err != nil {
		t.Fatal(err)
	}

	if _, err := Unmarshal(b[:5]); !errors.Is(err, ErrShortBuffer) {
		t.Errorf("short buffer: err = %v", err)
	}

	bad := bytes.Clone(b)
	bad[0] = 0
	if _, err := Unmarshal(bad); !errors.Is(err, ErrBadMagic) {
		t.Errorf("bad magic: err = %v", err)
	}

	bad = bytes.Clone(b)
	bad[2] = 99
	if _, err := Unmarshal(bad); !errors.Is(err, ErrBadVersion) {
		t.Errorf("bad version: err = %v", err)
	}

	bad = bytes.Clone(b)
	bad[3] = 99
	if _, err := Unmarshal(bad); !errors.Is(err, ErrBadType) {
		t.Errorf("bad type: err = %v", err)
	}

	bad = bytes.Clone(b)
	bad[7] ^= 0xFF // flip dst, invalidating the CRC
	if _, err := Unmarshal(bad); !errors.Is(err, ErrBadChecksum) {
		t.Errorf("bad checksum: err = %v", err)
	}

	// Truncating the payload region must not pass the length check.
	if _, err := Unmarshal(b[:len(b)-1]); err == nil {
		t.Error("truncated frame decoded successfully")
	}
}

func TestMarshalRejectsInvalid(t *testing.T) {
	if _, err := (&Frame{Type: Type(99)}).Marshal(); !errors.Is(err, ErrBadType) {
		t.Errorf("invalid type: err = %v", err)
	}
	if _, err := (&Frame{Type: DATA, Payload: make([]byte, MaxPayload+1)}).Marshal(); !errors.Is(err, ErrTooLong) {
		t.Errorf("oversize payload: err = %v", err)
	}
}

// Property: Marshal then Unmarshal is the identity for arbitrary frames.
func TestQuickRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	f := func(ty uint8, src, dst, dataBytes uint16, lb, rb int16, esn, seq, ack uint32, mcast, ackReq, hasAck bool, payloadLen uint16) bool {
		fr := &Frame{
			Type:          Type(ty % uint8(numTypes)),
			Src:           NodeID(src),
			Dst:           NodeID(dst),
			DataBytes:     dataBytes,
			LocalBackoff:  lb,
			RemoteBackoff: rb,
			ESN:           esn,
			Seq:           seq,
			Ack:           ack,
			Multicast:     mcast,
			AckRequested:  ackReq,
			HasAck:        hasAck,
		}
		if n := int(payloadLen % 600); n > 0 {
			fr.Payload = make([]byte, n)
			r.Read(fr.Payload)
		}
		b, err := fr.Marshal()
		if err != nil {
			return false
		}
		got, err := Unmarshal(b)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(fr, got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: single-bit corruption anywhere in the buffer is detected (the
// decoder never silently returns a different frame).
func TestQuickBitFlipDetected(t *testing.T) {
	base := &Frame{Type: DATA, Src: 3, Dst: 9, DataBytes: 512, ESN: 5, Seq: 11, Payload: []byte("payload bytes")}
	b, err := base.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	f := func(pos uint16, bit uint8) bool {
		buf := bytes.Clone(b)
		buf[int(pos)%len(buf)] ^= 1 << (bit % 8)
		got, err := Unmarshal(buf)
		if err != nil {
			return true // detected
		}
		return reflect.DeepEqual(got, base) // flipped back? impossible, but equality is the only pass
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkMarshal(b *testing.B) {
	f := &Frame{Type: DATA, Src: 1, Dst: 2, DataBytes: 512, Payload: make([]byte, 482)}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := f.Marshal(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkUnmarshal(b *testing.B) {
	f := &Frame{Type: DATA, Src: 1, Dst: 2, DataBytes: 512, Payload: make([]byte, 482)}
	buf, err := f.Marshal()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Unmarshal(buf); err != nil {
			b.Fatal(err)
		}
	}
}
