package geom

import (
	"math/rand"
	"testing"
)

func TestComponentsBasic(t *testing.T) {
	// Two clusters 100 ft apart, hop radius 10: two components, labeled in
	// first-occurrence order.
	pts := []Vec3{
		V(0, 0, 0), V(5, 0, 0), V(9, 3, 0), // chain: 0-1-2
		V(100, 0, 0), V(104, 0, 0), // pair: 3-4
	}
	labels, n := Components(pts, 10)
	if n != 2 {
		t.Fatalf("count = %d, want 2", n)
	}
	want := []int{0, 0, 0, 1, 1}
	for i := range want {
		if labels[i] != want[i] {
			t.Fatalf("labels = %v, want %v", labels, want)
		}
	}
}

func TestComponentsHopIsInclusiveAtExactRadius(t *testing.T) {
	// Two points at exactly r must connect: the medium treats a pair at the
	// certified cutoff as potentially audible.
	labels, n := Components([]Vec3{V(0, 0, 0), V(10, 0, 0)}, 10)
	if n != 1 || labels[0] != labels[1] {
		t.Fatalf("points at exactly r not connected: labels=%v count=%d", labels, n)
	}
	// Just beyond r must not.
	labels, n = Components([]Vec3{V(0, 0, 0), V(10.001, 0, 0)}, 10)
	if n != 2 || labels[0] == labels[1] {
		t.Fatalf("points beyond r connected: labels=%v count=%d", labels, n)
	}
}

func TestComponentsTransitiveChain(t *testing.T) {
	// A long chain where only consecutive points are within r: one component.
	var pts []Vec3
	for i := 0; i < 50; i++ {
		pts = append(pts, V(float64(i)*9, 0, 0))
	}
	_, n := Components(pts, 10)
	if n != 1 {
		t.Fatalf("chain split into %d components, want 1", n)
	}
}

func TestComponentsDegenerateInputs(t *testing.T) {
	if labels, n := Components(nil, 10); n != 0 || len(labels) != 0 {
		t.Fatalf("empty input: labels=%v count=%d", labels, n)
	}
	// Non-positive or infinite radius: no certificate, everything is one
	// component.
	pts := []Vec3{V(0, 0, 0), V(1e6, 0, 0)}
	for _, r := range []float64{0, -1} {
		labels, n := Components(pts, r)
		if n != 1 || labels[0] != 0 || labels[1] != 0 {
			t.Fatalf("r=%v: labels=%v count=%d, want one component", r, labels, n)
		}
	}
}

func TestComponentsMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 40; trial++ {
		n := 2 + rng.Intn(60)
		r := 5 + rng.Float64()*20
		pts := make([]Vec3, n)
		for i := range pts {
			pts[i] = V(rng.Float64()*300-150, rng.Float64()*300-150, rng.Float64()*20)
		}
		labels, count := Components(pts, r)
		if len(labels) != n {
			t.Fatalf("trial %d: %d labels for %d points", trial, len(labels), n)
		}
		// Brute-force union-find for the reference partition.
		ref := make([]int, n)
		for i := range ref {
			ref[i] = i
		}
		var find func(int) int
		find = func(x int) int {
			for ref[x] != x {
				ref[x] = ref[ref[x]]
				x = ref[x]
			}
			return x
		}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if pts[i].Dist(pts[j]) <= r {
					ri, rj := find(i), find(j)
					if ri != rj {
						ref[ri] = rj
					}
				}
			}
		}
		seen := map[int]bool{}
		for i := 0; i < n; i++ {
			if !seen[find(i)] {
				seen[find(i)] = true
			}
			for j := i + 1; j < n; j++ {
				same := find(i) == find(j)
				if (labels[i] == labels[j]) != same {
					t.Fatalf("trial %d: points %d,%d same=%v but labels %d,%d",
						trial, i, j, same, labels[i], labels[j])
				}
			}
		}
		if count != len(seen) {
			t.Fatalf("trial %d: count=%d, brute force says %d", trial, count, len(seen))
		}
		// First-occurrence normalization: scanning labels left to right, each
		// new label must be exactly one more than the max seen so far.
		max := -1
		for i, l := range labels {
			if l > max+1 {
				t.Fatalf("trial %d: label %d at index %d skips ahead of max %d", trial, l, i, max)
			}
			if l > max {
				max = l
			}
		}
	}
}

func TestUnionMergesAndRenormalizes(t *testing.T) {
	labels := []int{0, 0, 1, 2, 2, 3}
	out, n := Union(labels, 1, 3) // merge components 0 and 2
	if n != 3 {
		t.Fatalf("count = %d, want 3", n)
	}
	// 0 and 2 collapse; renormalized first-occurrence: {0,0}, {1}, {0,0}, {2}
	want := []int{0, 0, 1, 0, 0, 2}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("out = %v, want %v", out, want)
		}
	}
	// Union within one component is a no-op partition-wise.
	out2, n2 := Union(labels, 3, 4)
	if n2 != 4 {
		t.Fatalf("self-union count = %d, want 4", n2)
	}
	for i := range labels {
		if out2[i] != labels[i] {
			t.Fatalf("self-union changed labels: %v -> %v", labels, out2)
		}
	}
}

// TestShardOfCellTotalDeterministicPartition is the satellite property test:
// cell→shard assignment is a total, deterministic partition at any shard
// count — every cell (including negative and extreme coordinates) maps into
// [0, shards), repeatably.
func TestShardOfCellTotalDeterministicPartition(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	cells := []Cube{
		{0, 0, 0}, {-1, -1, -1}, {1 << 20, -(1 << 20), 3},
		{-2147483648 >> 8, 2147483647 >> 8, 0},
	}
	for i := 0; i < 500; i++ {
		cells = append(cells, Cube{rng.Intn(4001) - 2000, rng.Intn(4001) - 2000, rng.Intn(41) - 20})
	}
	for _, shards := range []int{1, 2, 3, 4, 7, 8, 64} {
		hit := make([]bool, shards)
		for _, c := range cells {
			s := ShardOfCell(c, shards)
			if s < 0 || s >= shards {
				t.Fatalf("ShardOfCell(%v, %d) = %d out of range", c, shards, s)
			}
			if ShardOfCell(c, shards) != s {
				t.Fatalf("ShardOfCell(%v, %d) not deterministic", c, shards)
			}
			hit[s] = true
		}
		// With 500+ scrambled cells every shard should be populated —
		// the hash actually spreads load rather than collapsing.
		if shards <= 64 {
			for s, ok := range hit {
				if !ok {
					t.Fatalf("shards=%d: shard %d never assigned across %d cells", shards, s, len(cells))
				}
			}
		}
	}
	// shards <= 1 degenerates to shard 0.
	for _, shards := range []int{1, 0, -3} {
		if s := ShardOfCell(Cube{5, -7, 2}, shards); s != 0 {
			t.Fatalf("ShardOfCell(_, %d) = %d, want 0", shards, s)
		}
	}
}

// TestGridCellEdgePositions pins the boundary convention under shard
// mapping: a station exactly on a cell edge belongs to the higher cell
// (floor-division half-open cells [i, i+1)), and CellOf agrees with the
// grid's internal mapping, so a component anchored by CellOf lands in the
// same cell the spatial hash files its stations under.
func TestGridCellEdgePositions(t *testing.T) {
	g := NewGrid(10)
	cases := []struct {
		p    Vec3
		want Cube
	}{
		{V(0, 0, 0), Cube{0, 0, 0}},
		{V(10, 0, 0), Cube{1, 0, 0}}, // exactly on the +X edge
		{V(9.999, 0, 0), Cube{0, 0, 0}},
		{V(-10, 0, 0), Cube{-1, 0, 0}}, // exactly on a negative edge
		{V(-0.001, 0, 0), Cube{-1, 0, 0}},
		{V(10, 10, 10), Cube{1, 1, 1}}, // corner point
		{V(-20, 30, -10), Cube{-2, 3, -1}},
	}
	for _, c := range cases {
		if got := g.cellOf(c.p); got != c.want {
			t.Fatalf("cellOf(%v) = %v, want %v", c.p, got, c.want)
		}
		if got := CellOf(c.p, 10); got != c.want {
			t.Fatalf("CellOf(%v, 10) = %v, want %v", c.p, got, c.want)
		}
	}
}

// TestGridMoveAcrossShardBoundary exercises Move across cells that map to
// different shards: membership follows the move, the old cell is vacated,
// and the destination's shard assignment is the same one a fresh Insert
// would get — moving is indistinguishable from remove+insert.
func TestGridMoveAcrossShardBoundary(t *testing.T) {
	const cell = 10.0
	const shards = 4
	g := NewGrid(cell)
	from := V(9.5, 0, 0)  // cell {0,0,0}
	to := V(10.0, 0, 0)   // cell {1,0,0}: crossing exactly onto the edge
	far := V(-35, 22, -3) // cell {-4,2,-1}
	if CellOf(from, cell) == CellOf(to, cell) {
		t.Fatal("test positions must straddle a cell boundary")
	}
	g.Insert(1, from)
	g.Move(1, from, to)
	found := false
	g.ForEachWithin(to, 0.5, func(id int32) { found = found || id == 1 })
	if !found {
		t.Fatal("member not found at destination after boundary move")
	}
	g.ForEachWithin(V(5, 0, 0), 4, func(id int32) {
		if id == 1 {
			t.Fatal("member still visited in source cell after boundary move")
		}
	})
	// Chained moves across shard boundaries keep exactly one registration.
	g.Move(1, to, far)
	if g.Len() != 1 {
		t.Fatalf("Len = %d after chained moves, want 1", g.Len())
	}
	// Shard of the destination cell must match what a fresh insert would
	// compute — the assignment depends only on the cell, not the history.
	if ShardOfCell(CellOf(far, cell), shards) != ShardOfCell(g.cellOf(far), shards) {
		t.Fatal("shard assignment diverges between CellOf and grid cellOf")
	}
}
