package geom

import "math"

// Components labels points by spatial connectivity: two points share a label
// iff they are linked by a chain of hops of length at most r. With r the
// medium's certified interaction cutoff (phy.Params.IndexCutoff), the labels
// are exactly the radio-interaction components of a static topology — every
// pair of points in different components is provably beyond the cutoff, so
// the gain between them is stored as exactly zero and no event in one
// component can ever influence the other.
//
// Labels are normalized to first-occurrence order: the component of pts[0]
// is 0, the next distinct component encountered while scanning pts in order
// is 1, and so on. The labeling is therefore a pure function of (pts, r) —
// independent of the union order, the grid's map iteration order, and any
// shard count — which is what lets shard planners built on top of it promise
// deterministic partitions.
//
// The hop test is inclusive (dist == r connects): the medium treats a pair
// at exactly the cutoff as potentially audible, so the partition must too.
// Cost is O(len(pts) · neighbors) via a spatial hash of cell edge r.
func Components(pts []Vec3, r float64) (labels []int, count int) {
	labels = make([]int, len(pts))
	if len(pts) == 0 {
		return labels, 0
	}
	if !(r > 0) || math.IsInf(r, 1) {
		// No finite positive cutoff: everything must be assumed connected.
		return labels, 1
	}
	parent := make([]int, len(pts))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[ra] = rb
		}
	}
	g := NewGrid(r)
	for i, p := range pts {
		g.Insert(int32(i), p)
	}
	for i, p := range pts {
		g.ForEachWithin(p, r, func(id int32) {
			j := int(id)
			if j != i && pts[j].Dist(p) <= r {
				union(i, j)
			}
		})
	}
	// Normalize representative ids to first-occurrence labels.
	rep := make(map[int]int)
	for i := range pts {
		r := find(i)
		l, ok := rep[r]
		if !ok {
			l = len(rep)
			rep[r] = l
		}
		labels[i] = l
	}
	return labels, len(rep)
}

// Union merges the components of points a and b in a label slice produced by
// Components, renormalizing to first-occurrence order. Shard planners use it
// to fold non-radio coupling — a traffic stream, a scheduled move — into the
// radio partition: the endpoints must then execute in the same shard even if
// their radios never hear each other.
func Union(labels []int, a, b int) (out []int, count int) {
	la, lb := labels[a], labels[b]
	out = make([]int, len(labels))
	rep := make(map[int]int)
	for i, l := range labels {
		if l == la || l == lb {
			l = la
		}
		n, ok := rep[l]
		if !ok {
			n = len(rep)
			rep[l] = n
		}
		out[i] = n
	}
	return out, len(rep)
}

// ShardOfCell maps one grid cell to a shard in [0, shards). The mapping is a
// total, deterministic function of (cell, shards): every cell gets exactly
// one shard, the same cell always gets the same shard, and no coordinate —
// including negative and boundary cells — falls outside the range. Planners
// key a whole component by one anchor cell (its first station's cell), so a
// component's shard depends only on where it sits, not on what else is in
// the building.
func ShardOfCell(c Cube, shards int) int {
	if shards <= 1 {
		return 0
	}
	// SplitMix-style scramble of the three coordinates; the same mixer the
	// simulator uses for RNG stream derivation, chosen for full avalanche so
	// neighboring cells land on unrelated shards.
	z := uint64(int64(c.I))*0x9E3779B97F4A7C15 ^
		uint64(int64(c.J))*0xBF58476D1CE4E5B9 ^
		uint64(int64(c.K))*0x94D049BB133111EB
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	return int(z % uint64(shards))
}

// CellOf maps a position to its containing cell of the given edge length —
// the same mapping Grid uses internally, exported so shard planners anchor
// components to cells exactly where the spatial hash would put them.
func CellOf(p Vec3, cell float64) Cube {
	return Cube{
		int(math.Floor(p.X / cell)),
		int(math.Floor(p.Y / cell)),
		int(math.Floor(p.Z / cell)),
	}
}
