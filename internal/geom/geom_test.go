package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestVectorArithmetic(t *testing.T) {
	a, b := V(1, 2, 3), V(4, 6, 8)
	if got := a.Add(b); got != V(5, 8, 11) {
		t.Fatalf("Add = %v", got)
	}
	if got := b.Sub(a); got != V(3, 4, 5) {
		t.Fatalf("Sub = %v", got)
	}
	if got := a.Scale(2); got != V(2, 4, 6) {
		t.Fatalf("Scale = %v", got)
	}
}

func TestNormAndDist(t *testing.T) {
	if got := V(3, 4, 0).Norm(); !almostEqual(got, 5) {
		t.Fatalf("Norm = %v, want 5", got)
	}
	if got := V(0, 0, 0).Dist(V(1, 2, 2)); !almostEqual(got, 3) {
		t.Fatalf("Dist = %v, want 3", got)
	}
}

func TestString(t *testing.T) {
	if got := V(1.25, -2, 3).String(); got != "(1.2, -2.0, 3.0)" && got != "(1.3, -2.0, 3.0)" {
		t.Fatalf("String = %q", got)
	}
}

func TestCubeOf(t *testing.T) {
	cases := []struct {
		p    Vec3
		want Cube
	}{
		{V(0, 0, 0), Cube{0, 0, 0}},
		{V(0.999, 0.5, 0.001), Cube{0, 0, 0}},
		{V(1, 1, 1), Cube{1, 1, 1}},
		{V(-0.5, 2.5, -1.01), Cube{-1, 2, -2}},
	}
	for _, c := range cases {
		if got := CubeOf(c.p); got != c.want {
			t.Errorf("CubeOf(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestCubeCenter(t *testing.T) {
	if got := (Cube{0, 0, 0}).Center(); got != V(0.5, 0.5, 0.5) {
		t.Fatalf("Center = %v", got)
	}
	if got := (Cube{-1, 2, 3}).Center(); got != V(-0.5, 2.5, 3.5) {
		t.Fatalf("Center = %v", got)
	}
}

// Property: quantization never moves a point by more than half the cube
// diagonal, and quantization is idempotent.
func TestQuickQuantizeError(t *testing.T) {
	f := func(x, y, z float64) bool {
		// Constrain to a sane building-scale range to avoid float
		// pathologies at astronomic magnitudes.
		x = math.Mod(x, 1000)
		y = math.Mod(y, 1000)
		z = math.Mod(z, 1000)
		if math.IsNaN(x) || math.IsNaN(y) || math.IsNaN(z) {
			return true
		}
		p := V(x, y, z)
		q := Quantize(p)
		if p.Dist(q) > MaxQuantizationError+1e-9 {
			return false
		}
		return Quantize(q) == q
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: distance is symmetric and satisfies the triangle inequality.
func TestQuickMetricProperties(t *testing.T) {
	f := func(ax, ay, az, bx, by, bz, cx, cy, cz float64) bool {
		clamp := func(v float64) float64 {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return 0
			}
			return math.Mod(v, 1e6)
		}
		a := V(clamp(ax), clamp(ay), clamp(az))
		b := V(clamp(bx), clamp(by), clamp(bz))
		c := V(clamp(cx), clamp(cy), clamp(cz))
		if !almostEqual(a.Dist(b), b.Dist(a)) {
			return false
		}
		return a.Dist(c) <= a.Dist(b)+b.Dist(c)+1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
