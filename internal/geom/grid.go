package geom

import "math"

// Grid is a uniform spatial hash over axis-aligned cubic cells of a
// configurable edge length. It answers "which members might lie within r of
// this point?" by visiting only the cells overlapping the query sphere, so
// neighborhood queries cost O(members nearby) instead of O(members total).
//
// Members are identified by caller-chosen int32 ids. The grid stores the
// position a member was inserted (or last moved) at; the caller is
// responsible for keeping that position current via Move. Queries are
// conservative: every member within r of the query point is visited, and
// members slightly beyond r may be visited too — callers that need an exact
// radius must filter by distance themselves.
type Grid struct {
	cell  float64
	cells map[Cube][]int32
}

// NewGrid returns an empty grid with the given cell edge length. A cell edge
// at least as large as the common query radius keeps every query within the
// 3x3x3 block around the query point.
func NewGrid(cellSize float64) *Grid {
	if !(cellSize > 0) || math.IsInf(cellSize, 1) {
		panic("geom: grid cell size must be positive and finite")
	}
	return &Grid{cell: cellSize, cells: make(map[Cube][]int32)}
}

// CellSize reports the grid's cell edge length.
func (g *Grid) CellSize() float64 { return g.cell }

// cellOf maps a position to its containing cell.
func (g *Grid) cellOf(p Vec3) Cube {
	return Cube{
		int(math.Floor(p.X / g.cell)),
		int(math.Floor(p.Y / g.cell)),
		int(math.Floor(p.Z / g.cell)),
	}
}

// Insert registers id at position p.
func (g *Grid) Insert(id int32, p Vec3) {
	c := g.cellOf(p)
	g.cells[c] = append(g.cells[c], id)
}

// Remove unregisters id, which must currently be registered at p (the
// position given to the Insert or Move that placed it). Removing an id that
// is not in p's cell panics: it means the caller's position bookkeeping has
// drifted from the grid's.
func (g *Grid) Remove(id int32, p Vec3) {
	c := g.cellOf(p)
	members := g.cells[c]
	for i, m := range members {
		if m == id {
			members[i] = members[len(members)-1]
			members[len(members)-1] = 0
			members = members[:len(members)-1]
			if len(members) == 0 {
				delete(g.cells, c)
			} else {
				g.cells[c] = members
			}
			return
		}
	}
	panic("geom: grid member not found in its cell")
}

// Move re-registers id from position from to position to. Moves within one
// cell are free.
func (g *Grid) Move(id int32, from, to Vec3) {
	if g.cellOf(from) == g.cellOf(to) {
		return
	}
	g.Remove(id, from)
	g.Insert(id, to)
}

// ForEachWithin visits every member whose cell overlaps the sphere of radius
// r around p (a superset of the members within r; within-cell visiting order
// is insertion-history order, so callers needing a canonical order must sort).
func (g *Grid) ForEachWithin(p Vec3, r float64, fn func(id int32)) {
	if r < 0 {
		return
	}
	lo := g.cellOf(Vec3{p.X - r, p.Y - r, p.Z - r})
	hi := g.cellOf(Vec3{p.X + r, p.Y + r, p.Z + r})
	for i := lo.I; i <= hi.I; i++ {
		for j := lo.J; j <= hi.J; j++ {
			for k := lo.K; k <= hi.K; k++ {
				for _, id := range g.cells[Cube{i, j, k}] {
					fn(id)
				}
			}
		}
	}
}

// Len reports the number of registered members.
func (g *Grid) Len() int {
	n := 0
	for _, members := range g.cells {
		n += len(members)
	}
	return n
}
