// Package geom provides the 3-D geometry primitives for the MACAW radio
// model: positions in feet, distances, and the 1-cubic-foot cube grid that
// the paper's simulator uses to approximate the media.
package geom

import (
	"fmt"
	"math"
)

// Vec3 is a point or displacement in 3-D space. Units are feet throughout
// the repository, matching the paper ("the cubes are 1 cubic foot in size",
// "all pads are 6 feet below the base station height").
type Vec3 struct {
	X, Y, Z float64
}

// V is shorthand for constructing a Vec3.
func V(x, y, z float64) Vec3 { return Vec3{x, y, z} }

// Add returns v + w.
func (v Vec3) Add(w Vec3) Vec3 { return Vec3{v.X + w.X, v.Y + w.Y, v.Z + w.Z} }

// Sub returns v - w.
func (v Vec3) Sub(w Vec3) Vec3 { return Vec3{v.X - w.X, v.Y - w.Y, v.Z - w.Z} }

// Scale returns v scaled by k.
func (v Vec3) Scale(k float64) Vec3 { return Vec3{v.X * k, v.Y * k, v.Z * k} }

// Norm returns the Euclidean length of v.
func (v Vec3) Norm() float64 { return math.Sqrt(v.X*v.X + v.Y*v.Y + v.Z*v.Z) }

// Dist returns the Euclidean distance between v and w.
func (v Vec3) Dist(w Vec3) float64 { return v.Sub(w).Norm() }

// String formats the vector with one decimal of precision (feet).
func (v Vec3) String() string { return fmt.Sprintf("(%.1f, %.1f, %.1f)", v.X, v.Y, v.Z) }

// Cube identifies one cell of the unit cube grid.
type Cube struct {
	I, J, K int
}

// CubeOf returns the grid cube containing p. Cube (i,j,k) spans
// [i, i+1) x [j, j+1) x [k, k+1).
func CubeOf(p Vec3) Cube {
	return Cube{int(math.Floor(p.X)), int(math.Floor(p.Y)), int(math.Floor(p.Z))}
}

// Center returns the center point of the cube. The paper's simulator
// computes signal strength "at each cube according to the distance from the
// signal source to the center of the cube".
func (c Cube) Center() Vec3 {
	return Vec3{float64(c.I) + 0.5, float64(c.J) + 0.5, float64(c.K) + 0.5}
}

// Quantize maps p to the center of its containing unit cube.
func Quantize(p Vec3) Vec3 { return CubeOf(p).Center() }

// MaxQuantizationError is the largest possible displacement introduced by
// Quantize: half the cube diagonal.
const MaxQuantizationError = 0.8660254037844387 // sqrt(3)/2
