package geom

import (
	"math/rand"
	"sort"
	"testing"
)

// queryIDs collects a sorted query result.
func queryIDs(g *Grid, p Vec3, r float64) []int32 {
	var out []int32
	g.ForEachWithin(p, r, func(id int32) { out = append(out, id) })
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func TestGridQueryIsSupersetOfBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		cell := 1 + rng.Float64()*30
		g := NewGrid(cell)
		n := 1 + rng.Intn(80)
		pos := make([]Vec3, n)
		for i := range pos {
			pos[i] = V(rng.Float64()*200-100, rng.Float64()*200-100, rng.Float64()*30)
			g.Insert(int32(i), pos[i])
		}
		for q := 0; q < 20; q++ {
			p := V(rng.Float64()*220-110, rng.Float64()*220-110, rng.Float64()*40-5)
			r := rng.Float64() * 2 * cell
			got := map[int32]bool{}
			g.ForEachWithin(p, r, func(id int32) { got[id] = true })
			for i := range pos {
				if pos[i].Dist(p) <= r && !got[int32(i)] {
					t.Fatalf("trial %d: member %d at dist %.2f <= r=%.2f not visited",
						trial, i, pos[i].Dist(p), r)
				}
			}
		}
	}
}

func TestGridMoveTracksMembership(t *testing.T) {
	g := NewGrid(10)
	g.Insert(1, V(0, 0, 0))
	g.Insert(2, V(5, 5, 5))
	g.Move(1, V(0, 0, 0), V(55, 0, 0))
	got := queryIDs(g, V(55, 0, 0), 1)
	if len(got) != 1 || got[0] != 1 {
		t.Fatalf("after move, query at destination = %v, want [1]", got)
	}
	for _, id := range queryIDs(g, V(0, 0, 0), 1) {
		if id == 1 {
			t.Fatal("moved member still visited from its old cell")
		}
	}
	// In-cell move keeps membership.
	g.Move(2, V(5, 5, 5), V(6, 6, 6))
	got = queryIDs(g, V(6, 6, 6), 2)
	if len(got) != 1 || got[0] != 2 {
		t.Fatalf("after in-cell move, query = %v, want [2]", got)
	}
}

func TestGridRemove(t *testing.T) {
	g := NewGrid(10)
	g.Insert(1, V(0, 0, 0))
	g.Insert(2, V(1, 1, 1))
	g.Remove(1, V(0, 0, 0))
	if g.Len() != 1 {
		t.Fatalf("Len = %d, want 1", g.Len())
	}
	got := queryIDs(g, V(0, 0, 0), 5)
	if len(got) != 1 || got[0] != 2 {
		t.Fatalf("query after remove = %v, want [2]", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("removing an absent member did not panic")
		}
	}()
	g.Remove(1, V(0, 0, 0))
}

func TestGridNegativeRadiusVisitsNothing(t *testing.T) {
	g := NewGrid(10)
	g.Insert(1, V(0, 0, 0))
	g.ForEachWithin(V(0, 0, 0), -1, func(int32) { t.Fatal("visited with negative radius") })
}

func TestNewGridRejectsBadCellSize(t *testing.T) {
	for _, size := range []float64{0, -1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("NewGrid(%v) did not panic", size)
				}
			}()
			NewGrid(size)
		}()
	}
}
