package stats

import "fmt"

// AdoptFrom copies src's counters into w (DESIGN.md §15). The measurement
// window is build-time configuration and must already match — a fork is only
// valid against a twin armed over the same [warmup, end) interval.
func (w *Windowed) AdoptFrom(src *Windowed) error {
	if w.warmup != src.warmup || w.end != src.end {
		return fmt.Errorf("stats: adopt: window [%d,%d) here vs [%d,%d) in warm twin",
			w.warmup, w.end, src.warmup, src.end)
	}
	w.count = src.count
	w.total = src.total
	return nil
}
