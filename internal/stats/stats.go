// Package stats computes the throughput and fairness metrics the paper
// reports: per-stream packets per second over the post-warmup measurement
// window, Jain's fairness index, max-min spread, and per-second time series.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"macaw/internal/sim"
)

// PPS converts a packet count over a window into packets per second.
func PPS(count int, window sim.Duration) float64 {
	if window <= 0 {
		return 0
	}
	return float64(count) / window.Seconds()
}

// Jain returns Jain's fairness index (sum x)^2 / (n * sum x^2): 1.0 for a
// perfectly even allocation, 1/n when a single stream captures everything.
func Jain(xs []float64) float64 {
	if len(xs) == 0 {
		return 1
	}
	var sum, sq float64
	for _, x := range xs {
		sum += x
		sq += x * x
	}
	if sq == 0 {
		return 1
	}
	return sum * sum / (float64(len(xs)) * sq)
}

// Spread returns max(xs) - min(xs); the paper reports "the maximum
// difference between throughput for any two streams in the same cell".
func Spread(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, x := range xs {
		lo = math.Min(lo, x)
		hi = math.Max(hi, x)
	}
	return hi - lo
}

// Total sums xs.
func Total(xs []float64) float64 {
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum
}

// Percentile returns the p-quantile (0..1) of xs by nearest-rank (0 for
// empty input).
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if p <= 0 {
		return s[0]
	}
	if p >= 1 {
		return s[len(s)-1]
	}
	i := int(p * float64(len(s)))
	if i >= len(s) {
		i = len(s) - 1
	}
	return s[i]
}

// Median returns the median of xs (0 for empty input).
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// Windowed counts events that fall inside a [warmup, end) measurement
// window.
type Windowed struct {
	warmup sim.Time
	end    sim.Time
	count  int
	total  int
}

// NewWindowed returns a counter measuring [warmup, end).
func NewWindowed(warmup, end sim.Time) *Windowed {
	return &Windowed{warmup: warmup, end: end}
}

// Record registers an event at time t.
func (w *Windowed) Record(t sim.Time) {
	w.total++
	if t >= w.warmup && t < w.end {
		w.count++
	}
}

// Count reports events inside the window; Total reports all events.
func (w *Windowed) Count() int { return w.count }

// Warmup returns the start of the measurement window.
func (w *Windowed) Warmup() sim.Time { return w.warmup }

// Total reports every recorded event regardless of window.
func (w *Windowed) Total() int { return w.total }

// PPS reports the in-window rate.
func (w *Windowed) PPS() float64 { return PPS(w.count, w.end-w.warmup) }

// TimeSeries buckets events into fixed-width bins for rate-over-time plots.
type TimeSeries struct {
	width   sim.Duration
	buckets []int
}

// NewTimeSeries returns a series with the given bucket width.
func NewTimeSeries(width sim.Duration) *TimeSeries {
	if width <= 0 {
		panic("stats: non-positive bucket width")
	}
	return &TimeSeries{width: width}
}

// Record registers an event at time t.
func (ts *TimeSeries) Record(t sim.Time) {
	i := int(t / ts.width)
	for len(ts.buckets) <= i {
		ts.buckets = append(ts.buckets, 0)
	}
	ts.buckets[i]++
}

// Buckets returns the per-bucket counts.
func (ts *TimeSeries) Buckets() []int { return ts.buckets }

// Rate returns the per-bucket rates in events/second.
func (ts *TimeSeries) Rate() []float64 {
	out := make([]float64, len(ts.buckets))
	for i, c := range ts.buckets {
		out[i] = PPS(c, ts.width)
	}
	return out
}

// FaultCounters aggregates fault-injection and watchdog activity over a run,
// so chaos tables can report fault exposure alongside throughput and
// fairness.
type FaultCounters struct {
	// Crashes and Restarts count node failure events.
	Crashes, Restarts int
	// BurstEpisodes counts bad-state episodes of burst-loss channels.
	BurstEpisodes int
	// LinkFaults counts asymmetric-link fault installations.
	LinkFaults int
	// Moves counts mobility-walk relocation steps.
	Moves int
	// WatchdogChecks counts liveness sweeps the watchdog completed.
	WatchdogChecks int
}

// Add accumulates o into f.
func (f *FaultCounters) Add(o FaultCounters) {
	f.Crashes += o.Crashes
	f.Restarts += o.Restarts
	f.BurstEpisodes += o.BurstEpisodes
	f.LinkFaults += o.LinkFaults
	f.Moves += o.Moves
	f.WatchdogChecks += o.WatchdogChecks
}

// String renders the counters compactly, omitting zero fields.
func (f FaultCounters) String() string {
	parts := make([]string, 0, 6)
	add := func(name string, v int) {
		if v != 0 {
			parts = append(parts, fmt.Sprintf("%s=%d", name, v))
		}
	}
	add("crashes", f.Crashes)
	add("restarts", f.Restarts)
	add("bursts", f.BurstEpisodes)
	add("linkfaults", f.LinkFaults)
	add("moves", f.Moves)
	add("checks", f.WatchdogChecks)
	if len(parts) == 0 {
		return "none"
	}
	return strings.Join(parts, " ")
}

// AppendState appends the counter's full state for the snapshot inventory
// (DESIGN.md §14).
func (w *Windowed) AppendState(b []byte) []byte {
	return fmt.Appendf(b, "win warmup=%d end=%d count=%d total=%d\n", w.warmup, w.end, w.count, w.total)
}
