package stats

import (
	"math"
	"testing"
	"testing/quick"

	"macaw/internal/sim"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestPPS(t *testing.T) {
	if got := PPS(100, 2*sim.Second); !almost(got, 50) {
		t.Fatalf("PPS = %v", got)
	}
	if PPS(5, 0) != 0 {
		t.Fatal("PPS with zero window")
	}
}

func TestJain(t *testing.T) {
	if got := Jain([]float64{10, 10, 10}); !almost(got, 1) {
		t.Fatalf("equal allocation Jain = %v", got)
	}
	if got := Jain([]float64{30, 0, 0}); !almost(got, 1.0/3) {
		t.Fatalf("captured allocation Jain = %v", got)
	}
	if got := Jain(nil); got != 1 {
		t.Fatalf("empty Jain = %v", got)
	}
	if got := Jain([]float64{0, 0}); got != 1 {
		t.Fatalf("all-zero Jain = %v", got)
	}
}

// Property: Jain is scale-invariant and within [1/n, 1].
func TestQuickJainBounds(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)
		}
		j := Jain(xs)
		if j < 1/float64(len(xs))-1e-9 || j > 1+1e-9 {
			return false
		}
		scaled := make([]float64, len(xs))
		for i := range xs {
			scaled[i] = xs[i] * 7.5
		}
		return almost(j, Jain(scaled))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSpreadTotalMedian(t *testing.T) {
	xs := []float64{3, 9, 5}
	if !almost(Spread(xs), 6) {
		t.Fatalf("Spread = %v", Spread(xs))
	}
	if !almost(Total(xs), 17) {
		t.Fatalf("Total = %v", Total(xs))
	}
	if !almost(Median(xs), 5) {
		t.Fatalf("Median = %v", Median(xs))
	}
	if !almost(Median([]float64{1, 2, 3, 4}), 2.5) {
		t.Fatal("even-length median wrong")
	}
	if Spread(nil) != 0 || Median(nil) != 0 {
		t.Fatal("empty-input edge cases")
	}
}

func TestWindowed(t *testing.T) {
	w := NewWindowed(50*sim.Second, 150*sim.Second)
	w.Record(10 * sim.Second)  // before warmup
	w.Record(60 * sim.Second)  // inside
	w.Record(100 * sim.Second) // inside
	w.Record(150 * sim.Second) // at end: excluded
	if w.Count() != 2 || w.Total() != 4 {
		t.Fatalf("count=%d total=%d", w.Count(), w.Total())
	}
	if !almost(w.PPS(), 0.02) {
		t.Fatalf("PPS = %v", w.PPS())
	}
}

func TestTimeSeries(t *testing.T) {
	ts := NewTimeSeries(1 * sim.Second)
	ts.Record(100 * sim.Millisecond)
	ts.Record(900 * sim.Millisecond)
	ts.Record(1500 * sim.Millisecond)
	ts.Record(3100 * sim.Millisecond)
	want := []int{2, 1, 0, 1}
	got := ts.Buckets()
	if len(got) != len(want) {
		t.Fatalf("buckets = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("buckets = %v, want %v", got, want)
		}
	}
	rates := ts.Rate()
	if !almost(rates[0], 2) {
		t.Fatalf("rates = %v", rates)
	}
}

func TestTimeSeriesBadWidthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewTimeSeries(0)
}

func TestPercentile(t *testing.T) {
	xs := []float64{5, 1, 4, 2, 3}
	if got := Percentile(xs, 0); got != 1 {
		t.Fatalf("p0 = %v", got)
	}
	if got := Percentile(xs, 1); got != 5 {
		t.Fatalf("p100 = %v", got)
	}
	if got := Percentile(xs, 0.5); got != 3 {
		t.Fatalf("p50 = %v", got)
	}
	if got := Percentile(nil, 0.5); got != 0 {
		t.Fatalf("empty = %v", got)
	}
	// The input must not be reordered.
	if xs[0] != 5 {
		t.Fatal("Percentile mutated its input")
	}
}

// Property: the percentile is monotone in p and bounded by min/max.
func TestQuickPercentileMonotone(t *testing.T) {
	f := func(raw []int16, a, b uint8) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)
		}
		pa, pb := float64(a)/255, float64(b)/255
		if pa > pb {
			pa, pb = pb, pa
		}
		qa, qb := Percentile(xs, pa), Percentile(xs, pb)
		lo, hi := Percentile(xs, 0), Percentile(xs, 1)
		return qa <= qb && qa >= lo && qb <= hi
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFaultCountersStringAndAdd(t *testing.T) {
	var f FaultCounters
	if got := f.String(); got != "none" {
		t.Fatalf("zero counters = %q", got)
	}
	f.Add(FaultCounters{Crashes: 1, Moves: 3})
	f.Add(FaultCounters{Restarts: 1, Moves: 1, WatchdogChecks: 40})
	want := "crashes=1 restarts=1 moves=4 checks=40"
	if got := f.String(); got != want {
		t.Fatalf("counters = %q, want %q", got, want)
	}
}
