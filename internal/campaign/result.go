package campaign

import (
	"bytes"
	"encoding/gob"
	"encoding/json"
	"fmt"
	"io"

	"macaw/internal/experiments"
	"macaw/internal/metrics"
)

// Result is one completed job's output: the rendered tables and, for
// generator runs, every per-run metrics snapshot (the PR 5 RunMetrics
// schema) keyed by its deterministic sink label. A Result is a pure function
// of the job's configuration — it carries no timestamps, host names, or
// cache provenance — which is what lets a cached replay stream
// byte-identically to a fresh simulation.
type Result struct {
	// Spec and Seed identify the job ("table:table6", 3).
	Spec string `json:"spec"`
	Seed int64  `json:"seed"`
	// Err is the deterministic failure message of a job that aborted (an
	// oracle violation, a watchdog panic); empty on success. Failed jobs
	// are never cached, so a resubmission retries them.
	Err string `json:"error,omitempty"`
	// Tables are the job's rendered tables in generator order.
	Tables []RenderedTable `json:"tables,omitempty"`
	// Metrics holds one compact-JSON RunMetrics document per run label,
	// sorted by label (the metrics.Sink order).
	Metrics []LabeledMetrics `json:"-"`
}

// RenderedTable is one table of a result: the generator's table id and its
// aligned-text rendering, exactly as macawsim prints it.
type RenderedTable struct {
	ID   string `json:"id"`
	Text string `json:"text"`
}

// LabeledMetrics pairs a sink label with its RunMetrics snapshot as compact
// JSON. Raw bytes, not decoded structs: metrics documents are re-emitted
// verbatim (or re-indented), never interpreted, and a slice of pairs —
// unlike a map — gob-encodes deterministically.
type LabeledMetrics struct {
	Label string
	JSON  []byte
}

// resultLine is the JSONL wire form of a Result: Metrics becomes a
// label-keyed object (encoding/json sorts map keys, keeping the line
// canonical).
type resultLine struct {
	Spec    string                     `json:"spec"`
	Seed    int64                      `json:"seed"`
	Err     string                     `json:"error,omitempty"`
	Tables  []RenderedTable            `json:"tables,omitempty"`
	Metrics map[string]json.RawMessage `json:"metrics,omitempty"`
}

// WriteJSONL writes the result as one JSON line.
func (r *Result) WriteJSONL(w io.Writer) error {
	line := resultLine{Spec: r.Spec, Seed: r.Seed, Err: r.Err, Tables: r.Tables}
	if len(r.Metrics) > 0 {
		line.Metrics = make(map[string]json.RawMessage, len(r.Metrics))
		for _, lm := range r.Metrics {
			line.Metrics[lm.Label] = json.RawMessage(lm.JSON)
		}
	}
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	return enc.Encode(line)
}

// WriteText writes the result's tables exactly as macawsim renders them —
// each table followed by a blank line — so a campaign's text stream
// byte-matches the equivalent CLI run below its header.
func (r *Result) WriteText(w io.Writer) error {
	if r.Err != "" {
		_, err := fmt.Fprintf(w, "FAILED %s seed %d: %s\n\n", r.Spec, r.Seed, r.Err)
		return err
	}
	for _, t := range r.Tables {
		if _, err := io.WriteString(w, t.Text+"\n"); err != nil {
			return err
		}
	}
	return nil
}

// encode renders the result for the ledger. gob round-trips every field
// bit-exactly, so a cache-served result streams byte-identically to the
// simulation that produced it.
func (r *Result) encode() []byte {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(r); err != nil {
		panic(fmt.Sprintf("campaign: encoding result: %v", err)) // concrete types cannot fail
	}
	return buf.Bytes()
}

// decodeResult parses a ledger payload. A corrupt payload returns an error
// and the job is re-run, never trusted.
func decodeResult(payload []byte) (*Result, error) {
	var r Result
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&r); err != nil {
		return nil, err
	}
	return &r, nil
}

// execute runs one job to completion and returns its Result. It runs on the
// caller's goroutine — the engine dispatches it through Runner.Do — and
// panics propagate to that chokepoint, which converts them into the job's
// deterministic failure message.
func (m *Manifest) execute(j Job) *Result {
	cfg := experiments.RunConfig{Total: m.Total(), Warmup: m.Warmup(), Seed: j.Seed, Audit: m.Audit}
	res := &Result{Spec: j.Spec, Seed: j.Seed}
	switch kind, arg, _ := splitSpec(j.Spec); kind {
	case "sweep":
		// Sweeps refuse metrics sinks (a warm fork only observes the
		// tail), so a sweep job's result is its rendered tables.
		variants, err := experiments.ParseSweepSpec(arg)
		if err != nil {
			panic(fmt.Sprintf("campaign: %v", err)) // validated at submission; unreachable
		}
		tabs, _, err := experiments.RunSweepTables(cfg, variants, experiments.SweepOptions{})
		if err != nil {
			panic(fmt.Sprintf("campaign: %v", err))
		}
		for _, t := range tabs {
			res.Tables = append(res.Tables, RenderedTable{ID: t.ID, Text: t.Render()})
		}
	case "chaos", "table":
		g := experiments.ChaosGenerator()
		if kind == "table" {
			var ok bool
			if g, ok = resolveGenerator(arg); !ok {
				panic(fmt.Sprintf("campaign: unknown experiment %q", arg)) // validated at submission
			}
		}
		sink := metrics.NewSink()
		cfg.Metrics = sink
		t := g.Run(cfg.ForTable(g.ID))
		res.Tables = []RenderedTable{{ID: t.ID, Text: t.Render()}}
		for _, label := range sink.Labels() {
			doc, err := json.Marshal(sink.Run(label))
			if err != nil {
				panic(fmt.Sprintf("campaign: encoding metrics for %s: %v", label, err))
			}
			res.Metrics = append(res.Metrics, LabeledMetrics{Label: label, JSON: doc})
		}
	default:
		panic(fmt.Sprintf("campaign: malformed job spec %q", j.Spec))
	}
	return res
}

// splitSpec cuts a canonical job spec into its kind and argument.
func splitSpec(spec string) (kind, arg string, ok bool) {
	for i := 0; i < len(spec); i++ {
		if spec[i] == ':' {
			return spec[:i], spec[i+1:], true
		}
	}
	return spec, "", false
}
