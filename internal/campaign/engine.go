package campaign

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"macaw/internal/experiments"
	"macaw/internal/snapshot"
)

// jobState tracks one job through its campaign.
type jobState int

const (
	jobPending jobState = iota
	jobRunning
	jobDone
	jobFailed
	jobCancelled
)

// Campaign is one submitted manifest in flight (or finished). All mutable
// fields are guarded by mu; the job list and manifest are immutable after
// construction.
type Campaign struct {
	ID   string
	Man  *Manifest
	Jobs []Job

	cancel context.CancelFunc
	done   chan struct{} // closed when every job has settled

	mu        sync.Mutex
	states    []jobState
	results   []*Result // indexed like Jobs; nil until settled
	cacheHits int
}

// Status is the JSON document of /campaigns/{id}: deterministic progress and
// cache counters.
type Status struct {
	ID        string `json:"id"`
	Name      string `json:"name,omitempty"`
	State     string `json:"state"` // running, completed, failed, cancelled
	Jobs      int    `json:"jobs"`
	Done      int    `json:"done"`
	Failed    int    `json:"failed"`
	Cancelled int    `json:"cancelled"`
	CacheHits int    `json:"cache_hits"`
}

// Status snapshots the campaign's progress.
func (c *Campaign) Status() Status {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := Status{ID: c.ID, Name: c.Man.Name, Jobs: len(c.Jobs), CacheHits: c.cacheHits}
	settled := 0
	for _, st := range c.states {
		switch st {
		case jobDone:
			s.Done++
			settled++
		case jobFailed:
			s.Failed++
			settled++
		case jobCancelled:
			s.Cancelled++
			settled++
		}
	}
	switch {
	case settled < len(c.Jobs):
		s.State = "running"
	case s.Cancelled > 0:
		s.State = "cancelled"
	case s.Failed > 0:
		s.State = "failed"
	default:
		s.State = "completed"
	}
	return s
}

// Done returns the channel closed when every job has settled.
func (c *Campaign) Done() <-chan struct{} { return c.done }

// Cancel stops the campaign's pending jobs; runs already executing finish
// and their results are kept.
func (c *Campaign) Cancel() { c.cancel() }

// settledPrefix returns the results of the longest job-order prefix whose
// jobs have all settled. Streaming replays declaration order, not completion
// order, so two streams of the same campaign are byte-comparable however the
// pool interleaved the work.
func (c *Campaign) settledPrefix() []*Result {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []*Result
	for i := range c.Jobs {
		if c.results[i] == nil {
			break
		}
		out = append(out, c.results[i])
	}
	return out
}

// Engine owns the daemon's campaigns: it schedules their jobs on the worker
// pool, serves completed results from the content-addressed cache, persists
// a record per campaign, and drains cleanly. One Engine per state directory.
type Engine struct {
	dir    string
	runner *experiments.Runner
	cache  *snapshot.Manifest

	ctx      context.Context // dies when Drain begins
	drain    context.CancelFunc
	jobs     sync.WaitGroup // in-flight + queued job goroutines
	draining sync.Once

	mu        sync.Mutex
	campaigns map[string]*Campaign
}

// NewEngine opens (or initializes) the state directory and re-schedules
// every campaign recorded there: completed jobs are served from the cache —
// the restart-resume path — and unfinished ones re-simulate. A corrupt
// cache file costs memoized work, never correctness: the engine logs on and
// re-runs. jobs bounds concurrent simulations (the experiments.Runner cap
// applies).
func NewEngine(dir string, jobs int) (*Engine, error) {
	if err := os.MkdirAll(filepath.Join(dir, "campaigns"), 0o755); err != nil {
		return nil, fmt.Errorf("campaign: state dir: %w", err)
	}
	cache, err := snapshot.OpenManifest(filepath.Join(dir, "cache.bin"))
	if err != nil {
		// Typed decode failure: start over with the fresh ledger
		// OpenManifest returned rather than refusing to serve.
		fmt.Fprintf(os.Stderr, "macawd: cache: %v; starting a fresh ledger\n", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	e := &Engine{
		dir: dir, runner: experiments.NewRunner(jobs), cache: cache,
		ctx: ctx, drain: cancel, campaigns: make(map[string]*Campaign),
	}
	if err := e.reload(); err != nil {
		cancel()
		return nil, err
	}
	return e, nil
}

// Jobs reports the engine's effective worker count.
func (e *Engine) Jobs() int { return e.runner.Jobs() }

// CacheLen reports the number of results in the content-addressed cache.
func (e *Engine) CacheLen() int { return e.cache.Len() }

// reload re-schedules every persisted campaign record.
func (e *Engine) reload() error {
	ents, err := os.ReadDir(filepath.Join(e.dir, "campaigns"))
	if err != nil {
		return fmt.Errorf("campaign: state dir: %w", err)
	}
	names := make([]string, 0, len(ents))
	for _, ent := range ents {
		if !ent.IsDir() && strings.HasSuffix(ent.Name(), ".json") {
			names = append(names, ent.Name())
		}
	}
	sort.Strings(names)
	for _, name := range names {
		path := filepath.Join(e.dir, "campaigns", name)
		data, err := os.ReadFile(path)
		if err != nil {
			return fmt.Errorf("campaign: record %s: %w", name, err)
		}
		m, err := DecodeManifest(strings.NewReader(string(data)))
		if err != nil {
			// A torn record fails closed for that campaign only: the
			// submission is gone, but the cache still holds its jobs.
			fmt.Fprintf(os.Stderr, "macawd: skipping unreadable campaign record %s: %v\n", name, err)
			continue
		}
		if _, _, err := e.start(m, false); err != nil {
			return err
		}
	}
	return nil
}

// Submit registers the manifest as a campaign and begins scheduling its
// jobs. Campaign identity is content-derived: resubmitting an identical
// manifest returns the existing campaign (created=false) instead of running
// it twice.
func (e *Engine) Submit(m *Manifest) (*Campaign, bool, error) {
	return e.start(m, true)
}

// start registers and schedules a campaign, persisting its record when the
// submission is new.
func (e *Engine) start(m *Manifest, persist bool) (*Campaign, bool, error) {
	id := m.ID()
	e.mu.Lock()
	if c, ok := e.campaigns[id]; ok {
		e.mu.Unlock()
		return c, false, nil
	}
	jobs := m.Jobs()
	ctx, cancel := context.WithCancel(e.ctx)
	c := &Campaign{
		ID: id, Man: m, Jobs: jobs, cancel: cancel,
		done:    make(chan struct{}),
		states:  make([]jobState, len(jobs)),
		results: make([]*Result, len(jobs)),
	}
	e.campaigns[id] = c
	e.mu.Unlock()

	if persist {
		if err := writeFileAtomic(filepath.Join(e.dir, "campaigns", id+".json"), m.Encode()); err != nil {
			// Fail the submission closed: an unpersisted campaign would
			// silently not survive a restart.
			e.mu.Lock()
			delete(e.campaigns, id)
			e.mu.Unlock()
			cancel()
			close(c.done)
			return nil, false, fmt.Errorf("campaign: persisting record: %w", err)
		}
	}

	var settle sync.WaitGroup
	for i := range jobs {
		settle.Add(1)
		e.jobs.Add(1)
		go func(i int) {
			defer settle.Done()
			defer e.jobs.Done()
			e.runJob(ctx, c, i)
		}(i)
	}
	go func() {
		settle.Wait()
		close(c.done)
	}()
	return c, true, nil
}

// runJob settles job i of campaign c: cache hit, fresh simulation, failure,
// or cancellation.
func (e *Engine) runJob(ctx context.Context, c *Campaign, i int) {
	j := c.Jobs[i]
	key := c.Man.jobKey(j)
	// The cache is consulted before taking a worker slot: a hit costs a
	// decode, not a simulation, so resubmitted campaigns finish without
	// queueing behind fresh work.
	if payload, ok := e.cache.Get(key); ok {
		if res, err := decodeResult(payload); err == nil {
			c.mu.Lock()
			c.states[i], c.results[i] = jobDone, res
			c.cacheHits++
			c.mu.Unlock()
			return
		}
		// A corrupt entry is re-run, never trusted.
	}
	c.mu.Lock()
	c.states[i] = jobRunning
	c.mu.Unlock()

	var res *Result
	err := e.runner.Do(ctx, j.Spec, j.Seed, func() { res = c.Man.execute(j) })
	switch {
	case err == nil:
		// Flush the ledger before exposing the result: once a client has
		// seen a job settle, a crash must not un-complete it.
		if perr := e.cache.Put(key, res.encode()); perr != nil {
			fmt.Fprintf(os.Stderr, "macawd: ledger flush for %s: %v\n", key, perr)
		}
		c.mu.Lock()
		c.states[i], c.results[i] = jobDone, res
		c.mu.Unlock()
	case ctx.Err() != nil:
		c.mu.Lock()
		c.states[i] = jobCancelled
		c.results[i] = &Result{Spec: j.Spec, Seed: j.Seed, Err: "cancelled"}
		c.mu.Unlock()
	default:
		// A deterministic abort (oracle violation, watchdog panic): record
		// the failure as the job's result, uncached so a resubmission
		// retries it.
		c.mu.Lock()
		c.states[i] = jobFailed
		c.results[i] = &Result{Spec: j.Spec, Seed: j.Seed, Err: err.Error()}
		c.mu.Unlock()
	}
}

// Campaign returns the campaign with the given id.
func (e *Engine) Campaign(id string) (*Campaign, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	c, ok := e.campaigns[id]
	return c, ok
}

// Campaigns lists every campaign's status, sorted by id.
func (e *Engine) Campaigns() []Status {
	e.mu.Lock()
	cs := make([]*Campaign, 0, len(e.campaigns))
	for _, c := range e.campaigns {
		cs = append(cs, c)
	}
	e.mu.Unlock()
	sort.Slice(cs, func(i, j int) bool { return cs[i].ID < cs[j].ID })
	out := make([]Status, len(cs))
	for i, c := range cs {
		out[i] = c.Status()
	}
	return out
}

// Drain stops accepting new work and waits for every in-flight run to
// finish and flush its ledger entry. Queued jobs that have not started are
// cancelled — the persisted campaign record plus the ledger resume them on
// the next start. Safe to call more than once.
func (e *Engine) Drain() {
	e.draining.Do(e.drain)
	e.jobs.Wait()
}

// MetricsDoc writes the merged metrics document of the campaign's jobs
// matching spec and seed — byte-identical to the -metrics file of the
// equivalent macawsim invocation, because both are the label-sorted
// metrics.Sink JSON of the same RunMetrics snapshots. spec == "" matches
// every spec; seed matters only when the filter would otherwise mix
// identical labels from different seeds. An unsettled matching job is an
// error: the document must be complete or absent, never partial.
func (c *Campaign) MetricsDoc(spec string, seed int64, haveSeed bool, w io.Writer) error {
	c.mu.Lock()
	merged := make(map[string]json.RawMessage)
	for i, j := range c.Jobs {
		if spec != "" && j.Spec != spec {
			continue
		}
		if haveSeed && j.Seed != seed {
			continue
		}
		res := c.results[i]
		if res == nil || c.states[i] == jobRunning || c.states[i] == jobPending {
			c.mu.Unlock()
			return fmt.Errorf("campaign: job %s seed %d has not settled yet", j.Spec, j.Seed)
		}
		for _, lm := range res.Metrics {
			merged[lm.Label] = json.RawMessage(lm.JSON)
		}
	}
	c.mu.Unlock()
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(struct {
		Runs map[string]json.RawMessage `json:"runs"`
	}{Runs: merged})
}

// writeFileAtomic writes data via a same-directory temp file and rename, the
// same crash discipline the snapshot container uses.
func writeFileAtomic(path string, data []byte) error {
	dir, base := filepath.Split(path)
	tmp, err := os.CreateTemp(dir, base+".tmp*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), path)
}
