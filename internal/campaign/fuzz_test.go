package campaign

import (
	"strings"
	"testing"
)

// FuzzDecodeManifest hammers the campaign-manifest decoder: whatever the
// bytes, it must fail closed with an error — never panic — and any document
// it accepts must survive a canonical re-encode/re-decode round trip with
// its identity and job expansion intact.
func FuzzDecodeManifest(f *testing.F) {
	f.Add([]byte(validManifest))
	f.Add([]byte(`{"total_s": 2, "warmup_s": 0.5, "runs": [{"table": "table1", "seeds": [1]}]}`))
	f.Add([]byte(`{"total_s": 30, "warmup_s": 5, "audit": true, "runs": [{"chaos": true, "seeds": [7, 8]}]}`))
	f.Add([]byte(`{"total_s": 60, "warmup_s": 50, "runs": [{"sweep": "cw.min=7,15;tournament.window=16", "seeds": [1]}]}`))
	f.Add([]byte(`{"total_s": 1e9, "warmup_s": 0, "runs": [{"table": "ext-loadsweep", "seeds": [-1, 0, 9223372036854775807]}]}`))
	f.Add([]byte(`{`))
	f.Add([]byte(`[]`))
	f.Add([]byte(`{"runs": [{"seeds": []}]}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := DecodeManifest(strings.NewReader(string(data)))
		if err != nil {
			if m != nil {
				t.Fatal("decode failed but returned a manifest")
			}
			return
		}
		id, jobs := m.ID(), m.Jobs()
		if len(jobs) == 0 {
			t.Fatal("accepted manifest expands to zero jobs")
		}
		back, err := DecodeManifest(strings.NewReader(string(m.Encode())))
		if err != nil {
			t.Fatalf("accepted manifest fails to re-decode its own encoding: %v", err)
		}
		if back.ID() != id {
			t.Fatalf("identity moved across re-encode: %q != %q", back.ID(), id)
		}
		backJobs := back.Jobs()
		if len(backJobs) != len(jobs) {
			t.Fatalf("job expansion moved across re-encode: %d != %d", len(backJobs), len(jobs))
		}
		for i := range jobs {
			if jobs[i] != backJobs[i] {
				t.Fatalf("job %d moved across re-encode: %+v != %+v", i, jobs[i], backJobs[i])
			}
			if m.jobKey(jobs[i]) != back.jobKey(backJobs[i]) {
				t.Fatalf("job %d cache key moved across re-encode", i)
			}
		}
	})
}
