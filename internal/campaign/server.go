package campaign

import (
	"encoding/json"
	"net/http"
	"strconv"
	"sync/atomic"
)

// Server is the daemon's HTTP surface over one Engine. Handlers are thin:
// they translate requests into engine calls and engine state into JSON,
// failing closed on any malformed input with a typed error body
// {"error": "..."} and an appropriate 4xx status.
type Server struct {
	eng      *Engine
	mux      *http.ServeMux
	draining atomic.Bool
}

// NewServer wires the API over eng:
//
//	GET  /healthz               liveness (200 while the process serves)
//	GET  /readyz                readiness (503 while draining)
//	POST /campaigns             submit a manifest; 202 created / 200 existing
//	GET  /campaigns             list campaign statuses
//	GET  /campaigns/{id}        one campaign's status
//	POST /campaigns/{id}/cancel stop the campaign's pending jobs
//	GET  /campaigns/{id}/results
//	     stream settled results as JSONL in job order; ?wait=1 blocks until
//	     the campaign settles; ?format=text renders tables as macawsim does
//	GET  /campaigns/{id}/metrics
//	     merged metrics.Sink document (?spec=, ?seed= filter), byte-identical
//	     to the equivalent macawsim -metrics file
func NewServer(eng *Engine) *Server {
	s := &Server{eng: eng, mux: http.NewServeMux()}
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		w.Write([]byte("ok\n"))
	})
	s.mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		if s.draining.Load() {
			http.Error(w, "draining", http.StatusServiceUnavailable)
			return
		}
		w.WriteHeader(http.StatusOK)
		w.Write([]byte("ready\n"))
	})
	s.mux.HandleFunc("POST /campaigns", s.submit)
	s.mux.HandleFunc("GET /campaigns", s.list)
	s.mux.HandleFunc("GET /campaigns/{id}", s.status)
	s.mux.HandleFunc("POST /campaigns/{id}/cancel", s.cancel)
	s.mux.HandleFunc("GET /campaigns/{id}/results", s.results)
	s.mux.HandleFunc("GET /campaigns/{id}/metrics", s.metrics)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// SetDraining flips the readiness probe; a draining daemon answers health
// but reports not-ready, and refuses new submissions.
func (s *Server) SetDraining() { s.draining.Store(true) }

// fail writes a typed JSON error body.
func fail(w http.ResponseWriter, code int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(struct {
		Error string `json:"error"`
	}{Error: err.Error()})
}

// writeJSON writes v as one compact JSON document.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

// submitReply is the submission response body.
type submitReply struct {
	ID      string `json:"id"`
	Created bool   `json:"created"`
	Jobs    int    `json:"jobs"`
}

func (s *Server) submit(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		fail(w, http.StatusServiceUnavailable, errDraining)
		return
	}
	m, err := DecodeManifest(r.Body)
	if err != nil {
		fail(w, http.StatusBadRequest, err)
		return
	}
	c, created, err := s.eng.Submit(m)
	if err != nil {
		fail(w, http.StatusInternalServerError, err)
		return
	}
	code := http.StatusOK
	if created {
		code = http.StatusAccepted
	}
	writeJSON(w, code, submitReply{ID: c.ID, Created: created, Jobs: len(c.Jobs)})
}

func (s *Server) list(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, struct {
		Campaigns []Status `json:"campaigns"`
	}{Campaigns: s.eng.Campaigns()})
}

// campaign resolves the {id} path segment, failing closed on an unknown id.
func (s *Server) campaign(w http.ResponseWriter, r *http.Request) (*Campaign, bool) {
	c, ok := s.eng.Campaign(r.PathValue("id"))
	if !ok {
		fail(w, http.StatusNotFound, errUnknownCampaign)
	}
	return c, ok
}

func (s *Server) status(w http.ResponseWriter, r *http.Request) {
	c, ok := s.campaign(w, r)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, c.Status())
}

func (s *Server) cancel(w http.ResponseWriter, r *http.Request) {
	c, ok := s.campaign(w, r)
	if !ok {
		return
	}
	c.Cancel()
	writeJSON(w, http.StatusOK, c.Status())
}

func (s *Server) results(w http.ResponseWriter, r *http.Request) {
	c, ok := s.campaign(w, r)
	if !ok {
		return
	}
	if r.URL.Query().Get("wait") == "1" {
		select {
		case <-c.Done():
		case <-r.Context().Done():
			return
		}
	}
	text := r.URL.Query().Get("format") == "text"
	if text {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	} else {
		w.Header().Set("Content-Type", "application/jsonl")
	}
	for _, res := range c.settledPrefix() {
		var err error
		if text {
			err = res.WriteText(w)
		} else {
			err = res.WriteJSONL(w)
		}
		if err != nil {
			return // client went away mid-stream
		}
	}
}

func (s *Server) metrics(w http.ResponseWriter, r *http.Request) {
	c, ok := s.campaign(w, r)
	if !ok {
		return
	}
	q := r.URL.Query()
	var seed int64
	haveSeed := false
	if v := q.Get("seed"); v != "" {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			fail(w, http.StatusBadRequest, errBadSeed)
			return
		}
		seed, haveSeed = n, true
	}
	w.Header().Set("Content-Type", "application/json")
	if err := c.MetricsDoc(q.Get("spec"), seed, haveSeed, w); err != nil {
		// Headers may already be out; best effort on the body. MetricsDoc
		// writes nothing before its first error check, so in practice the
		// 409 arrives clean.
		fail(w, http.StatusConflict, err)
	}
}
