package campaign

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"macaw/internal/experiments"
	"macaw/internal/metrics"
	"macaw/internal/sim"
)

// tinyManifest is a one-job campaign that simulates in well under a second.
const tinyManifest = `{"name": "tiny", "total_s": 2, "warmup_s": 0.5, "runs": [{"table": "table9", "seeds": [5]}]}`

// newTestServer starts an engine rooted in a fresh temp dir behind an
// httptest server. The engine drains on cleanup.
func newTestServer(t *testing.T) (*Engine, *httptest.Server) {
	t.Helper()
	eng, err := NewEngine(t.TempDir(), 2)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	ts := httptest.NewServer(NewServer(eng))
	t.Cleanup(func() {
		ts.Close()
		eng.Drain()
	})
	return eng, ts
}

// post submits body and decodes the JSON reply into out, asserting the
// status code.
func post(t *testing.T, url, body string, wantCode int, out any) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != wantCode {
		t.Fatalf("POST %s = %d, want %d (body %s)", url, resp.StatusCode, wantCode, raw)
	}
	if out != nil {
		if err := json.Unmarshal(raw, out); err != nil {
			t.Fatalf("POST %s reply %q: %v", url, raw, err)
		}
	}
}

// get fetches url and returns the body, asserting the status code.
func get(t *testing.T, url string, wantCode int) []byte {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != wantCode {
		t.Fatalf("GET %s = %d, want %d (body %s)", url, resp.StatusCode, wantCode, raw)
	}
	return raw
}

func TestSubmitRunsToCompletion(t *testing.T) {
	_, ts := newTestServer(t)
	var rep submitReply
	post(t, ts.URL+"/campaigns", tinyManifest, http.StatusAccepted, &rep)
	if !rep.Created || rep.Jobs != 1 {
		t.Fatalf("submit reply = %+v, want created with 1 job", rep)
	}
	// wait=1 blocks until the campaign settles.
	jsonl := get(t, ts.URL+"/campaigns/"+rep.ID+"/results?wait=1", http.StatusOK)
	lines := bytes.Split(bytes.TrimSpace(jsonl), []byte("\n"))
	if len(lines) != 1 {
		t.Fatalf("got %d result lines, want 1:\n%s", len(lines), jsonl)
	}
	var line struct {
		Spec   string `json:"spec"`
		Seed   int64  `json:"seed"`
		Err    string `json:"error"`
		Tables []struct{ ID, Text string }
	}
	if err := json.Unmarshal(lines[0], &line); err != nil {
		t.Fatalf("result line: %v", err)
	}
	if line.Spec != "table:table9" || line.Seed != 5 || line.Err != "" {
		t.Fatalf("result line = %+v", line)
	}

	var st Status
	if err := json.Unmarshal(get(t, ts.URL+"/campaigns/"+rep.ID, http.StatusOK), &st); err != nil {
		t.Fatal(err)
	}
	if st.State != "completed" || st.Done != 1 || st.CacheHits != 0 {
		t.Fatalf("status = %+v, want completed/1 done/0 hits", st)
	}
}

// Resubmitting the identical manifest returns the existing campaign;
// resubmitting under a new name creates a fresh campaign served entirely
// from the content-addressed cache, with a byte-identical result stream.
func TestResubmissionHitsCache(t *testing.T) {
	_, ts := newTestServer(t)
	var first submitReply
	post(t, ts.URL+"/campaigns", tinyManifest, http.StatusAccepted, &first)
	stream1 := get(t, ts.URL+"/campaigns/"+first.ID+"/results?wait=1", http.StatusOK)

	var again submitReply
	post(t, ts.URL+"/campaigns", tinyManifest, http.StatusOK, &again)
	if again.Created || again.ID != first.ID {
		t.Fatalf("identical resubmission = %+v, want existing id %s", again, first.ID)
	}

	renamed := strings.Replace(tinyManifest, `"tiny"`, `"tiny-rerun"`, 1)
	var fresh submitReply
	post(t, ts.URL+"/campaigns", renamed, http.StatusAccepted, &fresh)
	if fresh.ID == first.ID {
		t.Fatal("renamed campaign kept the old id")
	}
	stream2 := get(t, ts.URL+"/campaigns/"+fresh.ID+"/results?wait=1", http.StatusOK)
	if !bytes.Equal(stream1, stream2) {
		t.Errorf("cache-served stream differs from fresh stream:\n%s\nvs\n%s", stream1, stream2)
	}
	var st Status
	if err := json.Unmarshal(get(t, ts.URL+"/campaigns/"+fresh.ID, http.StatusOK), &st); err != nil {
		t.Fatal(err)
	}
	if st.CacheHits != st.Jobs || st.Done != st.Jobs {
		t.Fatalf("renamed campaign status = %+v, want every job a cache hit", st)
	}
}

func TestMalformedSubmissionsFailClosed(t *testing.T) {
	_, ts := newTestServer(t)
	for name, body := range map[string]string{
		"not json":      `{"total_s"`,
		"unknown field": `{"total_s": 2, "warmup_s": 0.5, "zzz": 1, "runs": [{"table": "table9", "seeds": [1]}]}`,
		"unknown table": `{"total_s": 2, "warmup_s": 0.5, "runs": [{"table": "nope", "seeds": [1]}]}`,
		"no seeds":      `{"total_s": 2, "warmup_s": 0.5, "runs": [{"table": "table9", "seeds": []}]}`,
	} {
		t.Run(name, func(t *testing.T) {
			resp, err := http.Post(ts.URL+"/campaigns", "application/json", strings.NewReader(body))
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			raw, _ := io.ReadAll(resp.Body)
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status %d, want 400 (body %s)", resp.StatusCode, raw)
			}
			var e struct {
				Error string `json:"error"`
			}
			if err := json.Unmarshal(raw, &e); err != nil || e.Error == "" {
				t.Fatalf("error body %q is not {\"error\": ...}", raw)
			}
			if !strings.Contains(e.Error, "campaign manifest") {
				t.Errorf("error %q does not read as a typed manifest error", e.Error)
			}
		})
	}
}

func TestUnknownCampaignIs404(t *testing.T) {
	_, ts := newTestServer(t)
	get(t, ts.URL+"/campaigns/ffffffffffffffff", http.StatusNotFound)
	get(t, ts.URL+"/campaigns/ffffffffffffffff/results", http.StatusNotFound)
	get(t, ts.URL+"/campaigns/ffffffffffffffff/metrics", http.StatusNotFound)
}

func TestCancelStopsPendingJobs(t *testing.T) {
	_, ts := newTestServer(t)
	// Many seeds on a 2-worker pool: some jobs are still queued when the
	// cancel lands.
	man := `{"total_s": 30, "warmup_s": 5, "runs": [{"table": "table9", "seeds": [1,2,3,4,5,6,7,8,9,10,11,12]}]}`
	var rep submitReply
	post(t, ts.URL+"/campaigns", man, http.StatusAccepted, &rep)
	var st Status
	post(t, ts.URL+"/campaigns/"+rep.ID+"/cancel", "", http.StatusOK, &st)
	get(t, ts.URL+"/campaigns/"+rep.ID+"/results?wait=1", http.StatusOK)
	if err := json.Unmarshal(get(t, ts.URL+"/campaigns/"+rep.ID, http.StatusOK), &st); err != nil {
		t.Fatal(err)
	}
	if st.State != "cancelled" || st.Cancelled == 0 {
		t.Fatalf("status after cancel = %+v, want cancelled jobs", st)
	}
}

func TestDrainingRefusesSubmissions(t *testing.T) {
	eng, _ := newTestServer(t)
	srv := NewServer(eng)
	srv.SetDraining()
	ts := httptest.NewServer(srv)
	defer ts.Close()
	post(t, ts.URL+"/campaigns", tinyManifest, http.StatusServiceUnavailable, nil)
	get(t, ts.URL+"/readyz", http.StatusServiceUnavailable)
	get(t, ts.URL+"/healthz", http.StatusOK)
}

// The campaign metrics document is byte-identical to what the equivalent
// direct run writes through metrics.Sink — the daemon serves the same
// result schema as `macawsim -metrics`.
func TestMetricsDocMatchesDirectSink(t *testing.T) {
	_, ts := newTestServer(t)
	var rep submitReply
	post(t, ts.URL+"/campaigns", tinyManifest, http.StatusAccepted, &rep)
	get(t, ts.URL+"/campaigns/"+rep.ID+"/results?wait=1", http.StatusOK)
	doc := get(t, ts.URL+"/campaigns/"+rep.ID+"/metrics?spec=table:table9&seed=5", http.StatusOK)

	sink := metrics.NewSink()
	cfg := experiments.RunConfig{
		Total: 2 * sim.Second, Warmup: sim.FromSeconds(0.5), Seed: 5, Metrics: sink,
	}
	g, _ := experiments.ByID("table9")
	g.Run(cfg.ForTable("table9"))
	var want bytes.Buffer
	if err := sink.WriteJSON(&want); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(doc, want.Bytes()) {
		t.Errorf("campaign metrics doc differs from direct sink document (%d vs %d bytes)", len(doc), want.Len())
	}
}

// The text stream renders tables exactly as the direct generator does.
func TestTextResultsMatchDirectRender(t *testing.T) {
	_, ts := newTestServer(t)
	var rep submitReply
	post(t, ts.URL+"/campaigns", tinyManifest, http.StatusAccepted, &rep)
	got := get(t, ts.URL+"/campaigns/"+rep.ID+"/results?wait=1&format=text", http.StatusOK)

	cfg := experiments.RunConfig{Total: 2 * sim.Second, Warmup: sim.FromSeconds(0.5), Seed: 5}
	g, _ := experiments.ByID("table9")
	want := g.Run(cfg.ForTable("table9")).Render() + "\n"
	if string(got) != want {
		t.Errorf("text stream:\n%sdiffers from direct render:\n%s", got, want)
	}
}

// A fresh engine over the same state directory resumes the persisted
// campaign entirely from the ledger: no simulation, every job a cache hit,
// and a byte-identical result stream — the restart-resume path in unit form.
func TestEngineRestartResumesFromLedger(t *testing.T) {
	dir := t.TempDir()
	eng, err := NewEngine(dir, 2)
	if err != nil {
		t.Fatal(err)
	}
	m, err := DecodeManifest(strings.NewReader(tinyManifest))
	if err != nil {
		t.Fatal(err)
	}
	c, created, err := eng.Submit(m)
	if err != nil || !created {
		t.Fatalf("Submit = %v created=%t", err, created)
	}
	<-c.Done()
	var stream1 bytes.Buffer
	for _, r := range c.settledPrefix() {
		r.WriteJSONL(&stream1)
	}
	eng.Drain()

	eng2, err := NewEngine(dir, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer eng2.Drain()
	c2, ok := eng2.Campaign(c.ID)
	if !ok {
		t.Fatal("restarted engine did not reload the campaign record")
	}
	<-c2.Done()
	st := c2.Status()
	if st.State != "completed" || st.CacheHits != st.Jobs {
		t.Fatalf("resumed status = %+v, want completed entirely from cache", st)
	}
	var stream2 bytes.Buffer
	for _, r := range c2.settledPrefix() {
		r.WriteJSONL(&stream2)
	}
	if !bytes.Equal(stream1.Bytes(), stream2.Bytes()) {
		t.Error("resumed result stream differs from the original")
	}
}

// A job that aborts deterministically (unresolvable layout is simulated
// here by an oracle-less panic path: an unknown generator snuck past
// validation is impossible, so use a sweep that fails in execution) is
// recorded as failed, uncached, and does not poison sibling jobs.
func TestJobFailureIsIsolated(t *testing.T) {
	eng, ts := newTestServer(t)
	// Two jobs: the failing one (cw.min above every DCF station's live
	// cw.max is rejected by ApplyDelta's validation at the barrier) and a
	// healthy sibling.
	man := `{"total_s": 2, "warmup_s": 0.5, "runs": [
	  {"sweep": "cw.min=1048576", "seeds": [1]},
	  {"table": "table9", "seeds": [5]}
	]}`
	var rep submitReply
	post(t, ts.URL+"/campaigns", man, http.StatusAccepted, &rep)
	jsonl := get(t, ts.URL+"/campaigns/"+rep.ID+"/results?wait=1", http.StatusOK)
	var st Status
	if err := json.Unmarshal(get(t, ts.URL+"/campaigns/"+rep.ID, http.StatusOK), &st); err != nil {
		t.Fatal(err)
	}
	if st.Failed != 1 || st.Done != 1 {
		t.Fatalf("status = %+v, want 1 failed + 1 done (stream:\n%s)", st, jsonl)
	}
	if eng.CacheLen() != 1 {
		t.Errorf("cache holds %d entries, want 1 (failures must not be cached)", eng.CacheLen())
	}
	if !strings.Contains(string(jsonl), `"error"`) {
		t.Errorf("failed job's line carries no error:\n%s", jsonl)
	}
}

// Runner.Do honours context cancellation while queued and converts run
// panics into typed failures without latching the pool.
func TestRunnerDo(t *testing.T) {
	r := experiments.NewRunner(1)
	err := r.Do(context.Background(), "tab", 7, func() { panic("boom") })
	var rf *experiments.RunFailure
	if !errors.As(err, &rf) {
		t.Fatalf("Do after panic = %v, want *RunFailure", err)
	}
	if rf.Table != "tab" || rf.Seed != 7 {
		t.Errorf("failure identity = %s/%d, want tab/7", rf.Table, rf.Seed)
	}
	if r.Failure() != nil {
		t.Error("Do latched the pool's failure state")
	}
	if err := r.Do(context.Background(), "tab", 8, func() {}); err != nil {
		t.Errorf("pool unusable after a Do panic: %v", err)
	}

	// A cancelled context while queued returns ctx.Err without running fn.
	block := make(chan struct{})
	started := make(chan struct{})
	go r.Do(context.Background(), "tab", 9, func() { close(started); <-block })
	<-started
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran := false
	if err := r.Do(ctx, "tab", 10, func() { ran = true }); err != context.Canceled {
		t.Errorf("queued Do under a dead context = %v, want context.Canceled", err)
	}
	if ran {
		t.Error("fn ran despite the cancelled context")
	}
	close(block)
}
