// Package campaign implements the experiment-campaign service behind
// cmd/macawd (DESIGN.md §17): a submitted manifest expands into a fixed,
// ordered list of jobs — one (spec, seed) simulation each — that fan out
// through the experiments.Runner worker pool, with every completed job's
// result recorded in a content-addressed cache keyed on (canonical config
// hash, seed). The cache doubles as the campaign ledger: it is flushed
// atomically per job, so however the daemon dies, a restart re-schedules the
// campaign and every job that finished is served from the cache instead of
// re-simulated. Results are pure functions of their job's configuration —
// no timestamps, no cache provenance — so a resumed campaign's result
// stream is byte-identical to an uninterrupted one.
package campaign

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"

	"macaw/internal/experiments"
	"macaw/internal/sim"
	"macaw/internal/snapshot"
)

// Manifest is the campaign submission document: the run length every job
// shares, and the list of run specs to expand against their seed lists.
type Manifest struct {
	// Name labels the campaign. It participates in the campaign ID (two
	// submissions differing only in name are distinct campaigns) but NOT in
	// any job's cache key — resubmitting a finished campaign under a new
	// name is served entirely from the cache.
	Name string `json:"name,omitempty"`
	// TotalS and WarmupS are the simulated seconds of every job, warmup
	// excluded from measurement. WarmupS must be strictly less than TotalS.
	TotalS  float64 `json:"total_s"`
	WarmupS float64 `json:"warmup_s"`
	// Audit attaches the protocol-conformance oracle to every run; a rule
	// violation fails the job instead of recording a non-conformant result.
	Audit bool `json:"audit,omitempty"`
	// Runs are the specs to expand. Each spec names exactly one generator
	// family and at least one seed.
	Runs []RunSpec `json:"runs"`
}

// RunSpec is one line of a manifest: exactly one of Table, Chaos, or Sweep,
// expanded over Seeds.
type RunSpec struct {
	// Table names a paper-table or extension generator (table1..table11,
	// ext-*).
	Table string `json:"table,omitempty"`
	// Chaos selects the fault-injection robustness table.
	Chaos bool `json:"chaos,omitempty"`
	// Sweep runs a warm-started parameter sweep over this spec string
	// ("kind=v1,v2[;kind2=v3,…]", the -sweep syntax).
	Sweep string `json:"sweep,omitempty"`
	// Seeds lists the seeds to run this spec at, one job per seed.
	Seeds []int64 `json:"seeds"`
}

// ManifestError is the typed decode/validation failure: every malformed
// manifest fails closed with the field that broke and why, never a partial
// campaign.
type ManifestError struct {
	Field  string // the offending field, e.g. "runs[2].table"
	Reason string
}

func (e *ManifestError) Error() string {
	return fmt.Sprintf("campaign manifest: %s: %s", e.Field, e.Reason)
}

// MaxManifestBytes bounds a submission body; a larger document is rejected
// before decoding.
const MaxManifestBytes = 1 << 20

// DecodeManifest decodes and validates a campaign manifest, failing closed
// with a *ManifestError on any defect: unknown fields, trailing garbage, a
// spec naming zero or several generator families, an unknown table id, a
// malformed sweep spec, missing seeds, or a warmup that does not fit inside
// the total.
func DecodeManifest(r io.Reader) (*Manifest, error) {
	dec := json.NewDecoder(io.LimitReader(r, MaxManifestBytes))
	dec.DisallowUnknownFields()
	var m Manifest
	if err := dec.Decode(&m); err != nil {
		return nil, &ManifestError{Field: "(document)", Reason: err.Error()}
	}
	// A second value (or any non-space trailing bytes) means the body was
	// not one JSON document.
	if err := dec.Decode(new(json.RawMessage)); err != io.EOF {
		return nil, &ManifestError{Field: "(document)", Reason: "trailing data after the manifest object"}
	}
	if err := m.validate(); err != nil {
		return nil, err
	}
	return &m, nil
}

// validate applies every manifest invariant.
func (m *Manifest) validate() error {
	if m.TotalS <= 0 {
		return &ManifestError{Field: "total_s", Reason: "must be > 0"}
	}
	if m.WarmupS < 0 {
		return &ManifestError{Field: "warmup_s", Reason: "must be >= 0"}
	}
	if m.WarmupS >= m.TotalS {
		return &ManifestError{Field: "warmup_s", Reason: "warmup must be shorter than total_s"}
	}
	if len(m.Runs) == 0 {
		return &ManifestError{Field: "runs", Reason: "a campaign needs at least one run spec"}
	}
	for i, rs := range m.Runs {
		field := fmt.Sprintf("runs[%d]", i)
		n := 0
		if rs.Table != "" {
			n++
		}
		if rs.Chaos {
			n++
		}
		if rs.Sweep != "" {
			n++
		}
		if n != 1 {
			return &ManifestError{Field: field, Reason: "exactly one of table, chaos, or sweep must be set"}
		}
		if rs.Table != "" {
			if _, ok := resolveGenerator(rs.Table); !ok {
				return &ManifestError{Field: field + ".table",
					Reason: fmt.Sprintf("unknown experiment %q (known: %s)", rs.Table, strings.Join(knownTables(), ", "))}
			}
		}
		if rs.Sweep != "" {
			if _, err := experiments.ParseSweepSpec(rs.Sweep); err != nil {
				return &ManifestError{Field: field + ".sweep", Reason: err.Error()}
			}
		}
		if len(rs.Seeds) == 0 {
			return &ManifestError{Field: field + ".seeds", Reason: "at least one seed is required"}
		}
		seen := make(map[int64]bool, len(rs.Seeds))
		for _, s := range rs.Seeds {
			if seen[s] {
				return &ManifestError{Field: field + ".seeds", Reason: fmt.Sprintf("seed %d repeats", s)}
			}
			seen[s] = true
		}
	}
	return nil
}

// resolveGenerator looks an experiment id up across the paper tables and the
// extension generators ("chaos" resolves separately via RunSpec.Chaos).
func resolveGenerator(id string) (experiments.Generator, bool) {
	if g, ok := experiments.ByID(id); ok {
		return g, true
	}
	for _, g := range experiments.Extensions() {
		if g.ID == id {
			return g, true
		}
	}
	return experiments.Generator{}, false
}

// knownTables lists every resolvable experiment id, sorted.
func knownTables() []string {
	ids := experiments.IDs()
	for _, g := range experiments.Extensions() {
		ids = append(ids, g.ID)
	}
	sort.Strings(ids)
	return ids
}

// Job is one unit of campaign work: one generator family at one seed.
type Job struct {
	// Spec is the job's canonical spec string: "table:<id>", "chaos", or
	// "sweep:<spec>". It is the run identity inside cache keys and result
	// lines.
	Spec string
	Seed int64
}

// spec renders a RunSpec's canonical spec string.
func (rs RunSpec) spec() string {
	switch {
	case rs.Table != "":
		return "table:" + rs.Table
	case rs.Chaos:
		return "chaos"
	default:
		return "sweep:" + rs.Sweep
	}
}

// Jobs expands the manifest into its ordered job list: specs in declaration
// order, seeds in declaration order within each spec. The order is part of
// the campaign's identity — the result stream replays it.
func (m *Manifest) Jobs() []Job {
	var jobs []Job
	for _, rs := range m.Runs {
		for _, seed := range rs.Seeds {
			jobs = append(jobs, Job{Spec: rs.spec(), Seed: seed})
		}
	}
	return jobs
}

// Total and Warmup convert the manifest durations to simulation time.
func (m *Manifest) Total() sim.Duration  { return sim.FromSeconds(m.TotalS) }
func (m *Manifest) Warmup() sim.Duration { return sim.FromSeconds(m.WarmupS) }

// canonical renders the manifest's canonical description: every field that
// shapes the campaign, in a fixed order. Hashing it yields the campaign ID.
func (m *Manifest) canonical() string {
	var b strings.Builder
	fmt.Fprintf(&b, "macawd-campaign-v1|name=%s|total=%d|warmup=%d|audit=%t", m.Name, m.Total(), m.Warmup(), m.Audit)
	for _, rs := range m.Runs {
		fmt.Fprintf(&b, "|spec=%s:seeds=", rs.spec())
		for i, s := range rs.Seeds {
			if i > 0 {
				b.WriteByte(',')
			}
			fmt.Fprintf(&b, "%d", s)
		}
	}
	return b.String()
}

// ID returns the campaign's content-derived identifier: the hex FNV-64a hash
// of the canonical manifest description. Submitting an identical manifest
// yields the identical campaign.
func (m *Manifest) ID() string {
	return fmt.Sprintf("%016x", snapshot.ConfigHash(m.canonical()))
}

// jobDesc is the canonical description of one job's run configuration —
// everything that shapes its event history and nothing that doesn't (the
// campaign name deliberately absent). Its hash content-addresses the job's
// result: overlapping campaigns, or one campaign resubmitted, share cache
// entries for every identically configured job.
func (m *Manifest) jobDesc(j Job) string {
	return fmt.Sprintf("macawd-job-v1|spec=%s|total=%d|warmup=%d|audit=%t|seed=%d",
		j.Spec, m.Total(), m.Warmup(), m.Audit, j.Seed)
}

// jobKey is the job's ledger key: spec, config hash, seed — the
// snapshot.Manifest key discipline checkpointed sweeps already use.
func (m *Manifest) jobKey(j Job) string {
	return snapshot.Key(j.Spec, snapshot.ConfigHash(m.jobDesc(j)), j.Seed)
}

// Encode renders the manifest as compact canonical JSON (the persisted
// campaign-record form).
func (m *Manifest) Encode() []byte {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetEscapeHTML(false)
	if err := enc.Encode(m); err != nil {
		panic(fmt.Sprintf("campaign: manifest encode: %v", err)) // concrete types cannot fail
	}
	return buf.Bytes()
}
