package campaign

import (
	"errors"
	"strings"
	"testing"
)

// validManifest is the well-formed document the decode tests perturb.
const validManifest = `{
  "name": "smoke",
  "total_s": 2,
  "warmup_s": 0.5,
  "runs": [
    {"table": "table9", "seeds": [1, 2]},
    {"chaos": true, "seeds": [3]},
    {"sweep": "backoff.max=16,32", "seeds": [1]}
  ]
}`

func TestDecodeManifestValid(t *testing.T) {
	m, err := DecodeManifest(strings.NewReader(validManifest))
	if err != nil {
		t.Fatalf("DecodeManifest: %v", err)
	}
	jobs := m.Jobs()
	want := []Job{
		{"table:table9", 1}, {"table:table9", 2},
		{"chaos", 3},
		{"sweep:backoff.max=16,32", 1},
	}
	if len(jobs) != len(want) {
		t.Fatalf("got %d jobs, want %d", len(jobs), len(want))
	}
	for i, j := range jobs {
		if j != want[i] {
			t.Errorf("job %d = %+v, want %+v", i, j, want[i])
		}
	}
}

func TestDecodeManifestFailsClosed(t *testing.T) {
	cases := []struct {
		name, body string
		field      string // the ManifestError field that must be named
	}{
		{"empty body", ``, "(document)"},
		{"not json", `{"total_s": `, "(document)"},
		{"unknown field", `{"total_s": 2, "warmup_s": 0.5, "bogus": 1, "runs": [{"table": "table9", "seeds": [1]}]}`, "(document)"},
		{"trailing garbage", validManifest + `{"again": true}`, "(document)"},
		{"zero total", `{"total_s": 0, "warmup_s": 0, "runs": [{"table": "table9", "seeds": [1]}]}`, "total_s"},
		{"negative warmup", `{"total_s": 2, "warmup_s": -1, "runs": [{"table": "table9", "seeds": [1]}]}`, "warmup_s"},
		{"warmup >= total", `{"total_s": 2, "warmup_s": 2, "runs": [{"table": "table9", "seeds": [1]}]}`, "warmup_s"},
		{"no runs", `{"total_s": 2, "warmup_s": 0.5, "runs": []}`, "runs"},
		{"spec names nothing", `{"total_s": 2, "warmup_s": 0.5, "runs": [{"seeds": [1]}]}`, "runs[0]"},
		{"spec names two families", `{"total_s": 2, "warmup_s": 0.5, "runs": [{"table": "table9", "chaos": true, "seeds": [1]}]}`, "runs[0]"},
		{"unknown table", `{"total_s": 2, "warmup_s": 0.5, "runs": [{"table": "table99", "seeds": [1]}]}`, "runs[0].table"},
		{"bad sweep spec", `{"total_s": 2, "warmup_s": 0.5, "runs": [{"sweep": "nope=1", "seeds": [1]}]}`, "runs[0].sweep"},
		{"no seeds", `{"total_s": 2, "warmup_s": 0.5, "runs": [{"table": "table9", "seeds": []}]}`, "runs[0].seeds"},
		{"duplicate seed", `{"total_s": 2, "warmup_s": 0.5, "runs": [{"table": "table9", "seeds": [4, 4]}]}`, "runs[0].seeds"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := DecodeManifest(strings.NewReader(tc.body))
			if err == nil {
				t.Fatal("decode succeeded; want a *ManifestError")
			}
			var me *ManifestError
			if !errors.As(err, &me) {
				t.Fatalf("error is %T (%v), want *ManifestError", err, err)
			}
			if me.Field != tc.field {
				t.Errorf("error names field %q, want %q (%v)", me.Field, tc.field, me)
			}
		})
	}
}

// The campaign ID is content-derived: byte-different manifests that decode
// to the same document share it, any semantic change moves it, and the name
// participates (so a rename forces a fresh campaign) while job cache keys
// ignore it (so the renamed campaign is served from cache).
func TestManifestIdentity(t *testing.T) {
	base, err := DecodeManifest(strings.NewReader(validManifest))
	if err != nil {
		t.Fatal(err)
	}
	reordered, err := DecodeManifest(strings.NewReader(strings.Replace(
		validManifest, `"name": "smoke",`, "", 1)))
	if err != nil {
		t.Fatal(err)
	}
	if base.ID() == reordered.ID() {
		t.Error("dropping the name did not change the campaign ID")
	}
	renamed := *base
	renamed.Name = "smoke-again"
	if renamed.ID() == base.ID() {
		t.Error("renaming did not change the campaign ID")
	}
	for i, j := range base.Jobs() {
		if got, want := renamed.jobKey(j), base.jobKey(j); got != want {
			t.Errorf("job %d cache key moved with the campaign name: %q != %q", i, got, want)
		}
	}
	faster := *base
	faster.TotalS = 3
	if faster.ID() == base.ID() {
		t.Error("changing total_s did not change the campaign ID")
	}
	if faster.jobKey(faster.Jobs()[0]) == base.jobKey(base.Jobs()[0]) {
		t.Error("changing total_s did not change the job cache key")
	}
}

// Encode/DecodeManifest round-trips the document and preserves identity.
func TestManifestEncodeRoundTrip(t *testing.T) {
	m, err := DecodeManifest(strings.NewReader(validManifest))
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeManifest(strings.NewReader(string(m.Encode())))
	if err != nil {
		t.Fatalf("re-decoding Encode output: %v", err)
	}
	if back.ID() != m.ID() {
		t.Errorf("round trip moved the campaign ID: %q != %q", back.ID(), m.ID())
	}
	if string(back.Encode()) != string(m.Encode()) {
		t.Error("Encode is not a fixed point across one round trip")
	}
}
