package campaign

import "errors"

// Sentinel errors of the HTTP surface; handlers wrap them into typed JSON
// error bodies.
var (
	errDraining        = errors.New("campaign: daemon is draining; not accepting submissions")
	errUnknownCampaign = errors.New("campaign: unknown campaign id")
	errBadSeed         = errors.New("campaign: seed must be a decimal integer")
)
